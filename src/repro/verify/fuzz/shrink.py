"""Failing-case minimization and replayable regression files.

``shrink_circuit`` takes a failing circuit and a ``still_fails`` predicate
and greedily minimizes it with two reducers, iterated to a fixed point:

* **gate deletion** -- delta-debugging-style chunk removal (chunk size
  halves from len/2 down to 1), keeping any deletion that still fails;
* **qubit removal** -- drop a qubit together with every gate touching it,
  then compact the remaining qubit indices.

The result is written as a self-contained JSON *regression file* (QASM
text + seed/spec/oracle/config metadata) under
``tests/data/fuzz_regressions/``; ``tests/test_fuzz_regressions.py``
auto-collects that directory, so every shrunk failure becomes a permanent
regression test the moment it lands.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Callable

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.circuits.qasm import parse_qasm, to_qasm

__all__ = [
    "REGRESSION_DIR",
    "load_regression",
    "replay_regression",
    "shrink_circuit",
    "shrink_sequence",
    "write_regression",
]

#: Default landing directory for shrunk failing cases (repo-relative).
REGRESSION_DIR = os.path.join("tests", "data", "fuzz_regressions")


def _compact_qubits(circuit: Circuit) -> Circuit:
    """Remap the used qubits to 0..k-1, dropping idle wires."""
    used = sorted(circuit.used_qubits())
    if not used or len(used) == circuit.num_qubits:
        return circuit
    remap = {old: new for new, old in enumerate(used)}
    out = Circuit(len(used), name=circuit.name)
    for g in circuit.gates:
        out.append(
            Gate(
                g.name,
                tuple(remap[q] for q in g.targets),
                tuple(remap[q] for q in g.controls),
                g.params,
            )
        )
    return out


def _without_gates(circuit: Circuit, start: int, stop: int) -> Circuit:
    gates = circuit.gates[:start] + circuit.gates[stop:]
    return Circuit(circuit.num_qubits, gates, name=circuit.name)


def _without_qubit(circuit: Circuit, qubit: int) -> Circuit | None:
    """Drop ``qubit`` and every gate touching it (None if nothing remains)."""
    gates = [g for g in circuit.gates if qubit not in g.qubits]
    if not gates:
        return None
    return _compact_qubits(
        Circuit(circuit.num_qubits, gates, name=circuit.name)
    )


def shrink_sequence(
    items: list,
    still_fails: Callable[[list], bool],
    max_checks: int = 400,
) -> list:
    """Delta-debugging chunk deletion over an arbitrary item sequence.

    The reducer underneath :func:`shrink_circuit`'s gate pass, exposed
    generically: chunk sizes halve from ``len/2`` down to 1, any deletion
    that keeps ``still_fails`` True is kept, iterated to a fixed point.
    The chaos harness reuses it to minimize failing fault schedules
    (:func:`repro.chaos.schedule.shrink_schedule`) -- the items there are
    ``(event_point, fault)`` pairs instead of gates.

    ``still_fails`` must be True for ``items``; the returned subsequence
    (original order preserved, possibly the input itself) satisfies it
    too.  ``max_checks`` bounds predicate calls, trading minimality for
    time -- never correctness.
    """
    checks = 0

    def fails(candidate: list) -> bool:
        nonlocal checks
        if checks >= max_checks or not candidate:
            return False
        checks += 1
        return still_fails(candidate)

    best = list(items)
    improved = True
    while improved and checks < max_checks:
        improved = False
        chunk = max(len(best) // 2, 1)
        while chunk >= 1 and checks < max_checks:
            start = 0
            while start < len(best):
                candidate = best[:start] + best[start + chunk:]
                if candidate and fails(candidate):
                    best = candidate
                    improved = True
                    # Retry the same offset: the next chunk slid into it.
                else:
                    start += chunk
            chunk //= 2
    return best


def shrink_circuit(
    circuit: Circuit,
    still_fails: Callable[[Circuit], bool],
    max_checks: int = 400,
) -> Circuit:
    """Minimize ``circuit`` while ``still_fails`` keeps returning True.

    ``still_fails`` must be True for the input circuit; the returned
    circuit also satisfies it.  ``max_checks`` bounds predicate calls so
    shrinking a slow oracle stays tractable (the result is then merely
    non-minimal, never wrong).
    """
    checks = 0

    def fails(c: Circuit) -> bool:
        nonlocal checks
        if checks >= max_checks or not c.gates:
            return False
        checks += 1
        return still_fails(c)

    best = circuit
    improved = True
    while improved and checks < max_checks:
        improved = False
        # Pass 1: chunked gate deletion, large chunks first.
        chunk = max(len(best.gates) // 2, 1)
        while chunk >= 1 and checks < max_checks:
            start = 0
            while start < len(best.gates):
                candidate = _without_gates(best, start, start + chunk)
                if candidate.gates and fails(candidate):
                    best = candidate
                    improved = True
                    # Retry the same offset: the next chunk slid into it.
                else:
                    start += chunk
            chunk //= 2
        # Pass 2: qubit removal (and free compaction of idle wires).
        for q in range(best.num_qubits - 1, -1, -1):
            if checks >= max_checks:
                break
            candidate = _without_qubit(best, q)
            if candidate is not None and fails(candidate):
                best = candidate
                improved = True
        compacted = _compact_qubits(best)
        if compacted.num_qubits < best.num_qubits and fails(compacted):
            best = compacted
            improved = True
    return best


# ---------------------------------------------------------------------------
# Replayable regression files
# ---------------------------------------------------------------------------


def write_regression(
    circuit: Circuit,
    oracle: str,
    directory: str = REGRESSION_DIR,
    seed: int | None = None,
    spec: dict | None = None,
    plant_bug: str | None = None,
    outcome: dict | None = None,
    note: str = "",
) -> str:
    """Persist a (shrunk) failing circuit as a replayable JSON file.

    Returns the path written.  The filename embeds the oracle name and a
    content hash, so re-finding the same minimized bug is idempotent.
    """
    qasm = to_qasm(circuit)
    digest = hashlib.sha256(
        (qasm + oracle).encode("utf-8")
    ).hexdigest()[:10]
    payload = {
        "format": "repro-fuzz-regression-v1",
        "oracle": oracle,
        "qasm": qasm,
        "seed": seed,
        "spec": spec,
        "plant_bug": plant_bug,
        "outcome": outcome,
        "note": note,
    }
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{oracle}_{digest}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_regression(path: str) -> tuple[Circuit, dict]:
    """Read a regression file back into (circuit, metadata)."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != "repro-fuzz-regression-v1":
        raise ValueError(f"{path}: not a repro fuzz regression file")
    circuit = parse_qasm(
        payload["qasm"], name=os.path.basename(path).rsplit(".", 1)[0]
    )
    return circuit, payload


def replay_regression(path: str, threads: int = 2) -> list:
    """Re-run a regression file's oracle(s) on the current code.

    Returns the oracle outcomes; on healthy code every outcome passes.
    Files recording a planted bug (``plant_bug`` set) document harness
    demos -- they too must pass *without* the fault installed.
    """
    from repro.verify.fuzz.oracles import ORACLES, run_oracles

    circuit, meta = load_regression(path)
    oracle = meta.get("oracle", "all")
    names = None if oracle in (None, "all") else [oracle]
    if names is not None and names[0] not in ORACLES:
        raise ValueError(f"{path}: unknown oracle {oracle!r}")
    return run_oracles(circuit, oracles=names, threads=threads)
