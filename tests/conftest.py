"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import StatevectorSimulator
from repro.circuits import Circuit, get_circuit
from repro.dd import DDPackage


def pytest_configure(config):
    # Registered in pyproject.toml too; duplicated here so the suite works
    # under a bare pytest invocation that misses the ini (e.g. rootdir
    # confusion in CI sandboxes).
    config.addinivalue_line(
        "markers", "serve: exercises the repro.serve batch simulation service"
    )


def pytest_collection_modifyitems(config, items):
    """Everything not explicitly marked ``slow`` belongs to tier 1.

    Keeping the tier-1 marker implicit means new tests join the fast
    default tier automatically; only opting *out* (``slow``) is explicit.
    ``serve`` tests follow the same rule: fast ones ride in tier 1, and
    the long-running service stress tests carry ``slow`` as well, so the
    default run skips them while ``-m serve`` selects the whole family.
    """
    for item in items:
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def pkg3() -> DDPackage:
    return DDPackage(3)


@pytest.fixture
def pkg4() -> DDPackage:
    return DDPackage(4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def random_state(n: int, seed: int = 0) -> np.ndarray:
    """A normalized random complex state on n qubits."""
    g = np.random.default_rng(seed)
    v = g.normal(size=1 << n) + 1j * g.normal(size=1 << n)
    return v / np.linalg.norm(v)


def reference_state(circuit: Circuit) -> np.ndarray:
    """Final state via the simplest baseline (reshape-mode statevector)."""
    return StatevectorSimulator(mode="reshape").run(circuit).state


def assert_states_close(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> None:
    """Exact (not global-phase-free) state comparison."""
    np.testing.assert_allclose(a, b, atol=atol, rtol=0)


def assert_same_quantum_state(a: np.ndarray, b: np.ndarray, atol: float = 1e-9) -> None:
    """Fidelity-based comparison, insensitive to global phase."""
    fidelity = abs(np.vdot(a, b)) ** 2
    assert fidelity == pytest.approx(1.0, abs=atol)


SMALL_WORKLOADS = [
    ("ghz", 6, {}),
    ("adder", 6, {}),
    ("wstate", 5, {}),
    ("qft", 5, {}),
    ("dnn", 5, {"layers": 3}),
    ("vqe", 5, {}),
    ("supremacy", 6, {"cycles": 6}),
    ("swaptest", 5, {}),
    ("knn", 7, {}),
    ("random", 6, {"gates": 40}),
]


@pytest.fixture(params=SMALL_WORKLOADS, ids=lambda w: f"{w[0]}_n{w[1]}")
def small_circuit(request) -> Circuit:
    family, n, kwargs = request.param
    return get_circuit(family, n, **kwargs)
