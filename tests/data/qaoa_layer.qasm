// One QAOA round on a 4-vertex ring, written with rzz and rx.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0]; h q[1]; h q[2]; h q[3];
rzz(0.7) q[0],q[1];
rzz(0.7) q[1],q[2];
rzz(0.7) q[2],q[3];
rzz(0.7) q[3],q[0];
rx(1.1) q[0]; rx(1.1) q[1]; rx(1.1) q[2]; rx(1.1) q[3];
