// Quantum teleportation core (pre-measurement), multi-register form.
OPENQASM 2.0;
include "qelib1.inc";
qreg alice[2];
qreg bob[1];
creg m[2];
// Prepare the payload |psi> = u3(...)|0> on alice[0].
u3(0.61547971,0.0,0.78539816) alice[0];
// Entangle alice[1] with bob[0].
h alice[1];
cx alice[1],bob[0];
// Bell measurement basis change.
cx alice[0],alice[1];
h alice[0];
