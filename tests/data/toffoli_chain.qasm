// Multi-controlled logic: a Toffoli chain computing AND of three bits.
OPENQASM 2.0;
include "qelib1.inc";
qreg in[3];
qreg anc[1];
qreg out[1];
x in[0];
x in[1];
x in[2];
ccx in[0],in[1],anc[0];
ccx anc[0],in[2],out[0];
// Uncompute the ancilla.
ccx in[0],in[1],anc[0];
