"""Semantic tests for the algorithm circuit generators.

Each family's defining output property is checked, and every family is
cross-validated between the DD and array backends (including the explicit
SU(4) unitary gates of quantum volume).
"""

import math

import numpy as np
import pytest

from repro.backends import DDSimulator, StatevectorSimulator
from repro.circuits import get_circuit
from repro.circuits.generators.algorithms import UnitaryGate
from repro.common.errors import CircuitError
from repro.sampling import most_likely

from tests.conftest import reference_state


class TestGrover:
    @pytest.mark.parametrize("marked", [0, 3, 13])
    def test_marked_item_amplified(self, marked):
        c = get_circuit("grover", 4, marked=marked)
        state = reference_state(c)
        probs = np.abs(state) ** 2
        assert int(np.argmax(probs)) == marked
        # Optimal iterations reach high success probability.
        assert probs[marked] > 0.9

    def test_iteration_count_default(self):
        c = get_circuit("grover", 4)
        # 3 iterations for n=4 (floor(pi/4 * 4) = 3).
        assert c.gate_counts["h"] == 4 + 3 * 8

    def test_single_iteration_partial_amplification(self):
        c = get_circuit("grover", 4, marked=5, iterations=1)
        probs = np.abs(reference_state(c)) ** 2
        assert probs[5] > 2 / 16  # above uniform, below certainty
        assert probs[5] < 0.9


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [0b1, 0b1010, 0b1111])
    def test_secret_recovered_deterministically(self, secret):
        c = get_circuit("bv", 4, secret=secret)
        state = reference_state(c)
        probs = np.abs(state) ** 2
        data_marginal = {}
        for idx, p in enumerate(probs):
            data_marginal[idx & 0b1111] = data_marginal.get(idx & 0b1111, 0) + p
        best = max(data_marginal, key=data_marginal.get)
        assert best == secret
        assert data_marginal[best] == pytest.approx(1.0, abs=1e-9)

    def test_out_of_range_secret_rejected(self):
        with pytest.raises(CircuitError):
            get_circuit("bv", 3, secret=8)


class TestDeutschJozsa:
    def test_constant_oracle_returns_zero(self):
        c = get_circuit("dj", 4, balanced=False)
        state = reference_state(c)
        probs = np.abs(state) ** 2
        p_zero = sum(probs[i] for i in range(32) if (i & 0b1111) == 0)
        assert p_zero == pytest.approx(1.0, abs=1e-9)

    def test_balanced_oracle_never_returns_zero(self):
        c = get_circuit("dj", 4, balanced=True)
        state = reference_state(c)
        probs = np.abs(state) ** 2
        p_zero = sum(probs[i] for i in range(32) if (i & 0b1111) == 0)
        assert p_zero == pytest.approx(0.0, abs=1e-9)


class TestQPE:
    @pytest.mark.parametrize("phase", [0.25, 0.3125, 0.5, 0.8125])
    def test_exact_phase_readout(self, phase):
        n_counting = 4
        c = get_circuit("qpe", n_counting, phase=phase)
        state = reference_state(c)
        probs = np.abs(state) ** 2
        hot = int(np.argmax(probs))
        counting = hot & ((1 << n_counting) - 1)
        assert counting / (1 << n_counting) == pytest.approx(phase)
        assert probs[hot] == pytest.approx(1.0, abs=1e-9)

    def test_inexact_phase_concentrates_nearby(self):
        n_counting = 4
        c = get_circuit("qpe", n_counting, phase=0.3)  # not 4-bit exact
        state = reference_state(c)
        probs = np.abs(state) ** 2
        hot = int(np.argmax(probs)) & 0b1111
        assert abs(hot / 16 - 0.3) < 1 / 16

    def test_bad_phase_rejected(self):
        with pytest.raises(CircuitError):
            get_circuit("qpe", 3, phase=1.5)


class TestQuantumVolume:
    def test_unitary_gates_are_unitary(self):
        c = get_circuit("qvolume", 4, depth=3)
        for g in c.gates:
            assert isinstance(g, UnitaryGate)
            u = g.matrix()
            np.testing.assert_allclose(
                u @ u.conj().T, np.eye(4), atol=1e-10
            )

    def test_backends_agree_on_unitary_gates(self):
        c = get_circuit("qvolume", 5, depth=4)
        dd = DDSimulator().run(c)
        sv = StatevectorSimulator().run(c)
        assert dd.fidelity(sv) == pytest.approx(1.0, abs=1e-8)

    def test_flatdd_handles_qv(self):
        from repro import FlatDDSimulator

        c = get_circuit("qvolume", 6, depth=5)
        ref = reference_state(c)
        r = FlatDDSimulator(threads=2).run(c)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(
            1.0, abs=1e-8
        )

    def test_distinct_layers_have_distinct_matrices(self):
        c = get_circuit("qvolume", 4, depth=2)
        mats = [g.matrix() for g in c.gates]
        assert not np.allclose(mats[0], mats[-1])

    def test_norm_preserved(self):
        c = get_circuit("qvolume", 4, depth=4)
        state = reference_state(c)
        assert np.linalg.norm(state) == pytest.approx(1.0, abs=1e-9)


class TestHiddenShift:
    @pytest.mark.parametrize("shift", [0b0001, 0b1010, 0b1111])
    def test_shift_recovered(self, shift):
        c = get_circuit("hiddenshift", 4, shift=shift)
        state = reference_state(c)
        top, p = most_likely(state)[0]
        assert int(top, 2) == shift
        assert p == pytest.approx(1.0, abs=1e-9)

    def test_odd_size_rejected(self):
        with pytest.raises(CircuitError):
            get_circuit("hiddenshift", 5)


class TestCrossBackend:
    @pytest.mark.parametrize(
        "family,n,kwargs",
        [
            ("grover", 4, {}),
            ("bv", 4, {}),
            ("dj", 4, {}),
            ("qpe", 4, {}),
            ("hiddenshift", 4, {}),
        ],
    )
    def test_dd_and_array_agree(self, family, n, kwargs):
        c = get_circuit(family, n, **kwargs)
        dd = DDSimulator().run(c)
        sv = StatevectorSimulator().run(c)
        assert dd.fidelity(sv) == pytest.approx(1.0, abs=1e-8)
