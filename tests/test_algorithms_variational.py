"""Tests for the VQE and QAOA drivers (exact-simulation variational loops)."""

import numpy as np
import pytest

from repro.algorithms import (
    QAOA,
    HardwareEfficientAnsatz,
    QAOAAnsatz,
    VQE,
)
from repro.backends import StatevectorSimulator
from repro.common.errors import CircuitError, SimulationError
from repro.core import FlatDDSimulator
from repro.observables import (
    PauliString,
    PauliSum,
    maxcut,
    transverse_field_ising,
)


def exact_ground_energy(ham, n):
    dim = 1 << n
    mat = np.zeros((dim, dim), dtype=complex)
    for basis in range(dim):
        e = np.zeros(dim, dtype=complex)
        e[basis] = 1.0
        mat[:, basis] = ham.apply(e)
    return float(np.linalg.eigvalsh(mat)[0])


class TestAnsatz:
    def test_parameter_count(self):
        a = HardwareEfficientAnsatz(4, layers=3)
        assert a.num_parameters == 24

    def test_build_validates_shape(self):
        a = HardwareEfficientAnsatz(3, layers=1)
        with pytest.raises(CircuitError):
            a.build(np.zeros(5))

    def test_deterministic_build(self):
        a = HardwareEfficientAnsatz(3, layers=2)
        p = np.linspace(0, 1, a.num_parameters)
        c1, c2 = a.build(p), a.build(p)
        assert [g.signature for g in c1] == [g.signature for g in c2]

    def test_qaoa_rejects_non_diagonal_cost(self):
        bad = PauliSum([PauliString.x(0)])
        with pytest.raises(CircuitError):
            QAOAAnsatz(bad, 2)

    def test_qaoa_circuit_structure(self):
        cost = maxcut([(0, 1), (1, 2)])
        a = QAOAAnsatz(cost, 3, rounds=2)
        c = a.build(np.array([0.1, 0.2, 0.3, 0.4]))
        names = c.gate_counts
        assert names["h"] == 3
        assert names["rzz"] == 4  # 2 edges x 2 rounds
        assert names["rx"] == 6


class TestVQE:
    @pytest.fixture(scope="class")
    def problem(self):
        n = 3
        ham = transverse_field_ising(n, j=1.0, h=0.6, periodic=False)
        return n, ham, exact_ground_energy(ham, n)

    def test_energy_matches_direct_expectation(self, problem):
        n, ham, _ = problem
        ansatz = HardwareEfficientAnsatz(n, layers=1)
        vqe = VQE(ham, ansatz, StatevectorSimulator())
        params = np.full(ansatz.num_parameters, 0.3)
        state = StatevectorSimulator().run(ansatz.build(params)).state
        assert vqe.energy(params) == pytest.approx(
            ham.expectation(state).real
        )

    def test_parameter_shift_matches_finite_differences(self, problem):
        n, ham, _ = problem
        ansatz = HardwareEfficientAnsatz(n, layers=1)
        vqe = VQE(ham, ansatz, StatevectorSimulator())
        rng = np.random.default_rng(3)
        params = rng.uniform(0, 2 * np.pi, ansatz.num_parameters)
        grad = vqe.gradient(params)
        eps = 1e-6
        for k in (0, ansatz.num_parameters // 2, ansatz.num_parameters - 1):
            shifted = params.copy()
            shifted[k] += eps
            plus = vqe.energy(shifted)
            shifted[k] -= 2 * eps
            minus = vqe.energy(shifted)
            fd = (plus - minus) / (2 * eps)
            assert grad[k] == pytest.approx(fd, abs=1e-4)

    def test_descent_reduces_energy(self, problem):
        n, ham, exact = problem
        ansatz = HardwareEfficientAnsatz(n, layers=2)
        vqe = VQE(ham, ansatz, StatevectorSimulator())
        result = vqe.minimize(iterations=30, learning_rate=0.15, seed=1)
        assert result.energy < result.energy_history[0]
        # Above the true ground state (variational principle)...
        assert result.energy >= exact - 1e-9
        # ...and reasonably close after a short descent.
        assert result.energy - exact < 0.8

    def test_histories_recorded(self, problem):
        n, ham, _ = problem
        ansatz = HardwareEfficientAnsatz(n, layers=1)
        vqe = VQE(ham, ansatz, StatevectorSimulator())
        result = vqe.minimize(iterations=3, seed=2)
        assert len(result.energy_history) == result.iterations + 1
        assert result.evaluations > result.iterations

    def test_empty_hamiltonian_rejected(self):
        with pytest.raises(SimulationError):
            VQE(PauliSum([]), HardwareEfficientAnsatz(2))


class TestQAOA:
    def test_maxcut_triangle(self):
        # Triangle graph: max cut = 2.
        cost = maxcut([(0, 1), (1, 2), (0, 2)])
        qaoa = QAOA(cost, 3, rounds=2, simulator=StatevectorSimulator())
        result = qaoa.optimize(grid=9, sweeps=2, seed=1)
        assert result.best_bitstring_value == pytest.approx(2.0)
        assert result.expectation > 1.2  # well above the random-guess 1.5/2

    def test_maxcut_path_graph_exact(self):
        # Path 0-1-2-3: max cut = 3 (alternating assignment).
        cost = maxcut([(0, 1), (1, 2), (2, 3)])
        qaoa = QAOA(cost, 4, rounds=2, simulator=StatevectorSimulator())
        result = qaoa.optimize(grid=9, sweeps=2, seed=2)
        assert result.best_bitstring_value == pytest.approx(3.0)
        bits = result.best_bitstring
        assert bits in ("0101", "1010")

    def test_history_improves(self):
        cost = maxcut([(0, 1), (1, 2)])
        qaoa = QAOA(cost, 3, simulator=StatevectorSimulator())
        result = qaoa.optimize(grid=7, sweeps=1, seed=3)
        assert result.expectation >= result.expectation_history[0] - 1e-9

    def test_bad_grid_rejected(self):
        cost = maxcut([(0, 1)])
        with pytest.raises(SimulationError):
            QAOA(cost, 2, simulator=StatevectorSimulator()).optimize(grid=2)


class TestSweepParity:
    """The batched sweep path must reproduce the legacy per-row path.

    ``simulate_sweep`` promises bit-identical states, so a whole VQE /
    QAOA optimization run through the sweep path must land on *exactly*
    the same energies, parameters, and evaluation counts as the legacy
    loop with the same simulator config and rng seed.
    """

    def test_sweep_auto_detection(self):
        ham = transverse_field_ising(2, j=1.0, h=0.5, periodic=False)
        ansatz = HardwareEfficientAnsatz(2, layers=1)
        assert VQE(ham, ansatz, FlatDDSimulator(threads=1)).sweep
        assert not VQE(ham, ansatz, StatevectorSimulator()).sweep
        cost = maxcut([(0, 1)])
        assert QAOA(cost, 2, simulator=FlatDDSimulator(threads=1)).sweep
        assert not QAOA(cost, 2, simulator=StatevectorSimulator()).sweep
        # explicit override beats detection
        assert not VQE(
            ham, ansatz, FlatDDSimulator(threads=1), sweep=False
        ).sweep

    def test_vqe_sweep_matches_legacy(self):
        n = 3
        ham = transverse_field_ising(n, j=1.0, h=0.6, periodic=False)
        ansatz = HardwareEfficientAnsatz(n, layers=1)
        results = {}
        for sweep in (False, True):
            vqe = VQE(
                ham, ansatz, FlatDDSimulator(threads=2), sweep=sweep
            )
            results[sweep] = vqe.minimize(
                iterations=3, learning_rate=0.15, seed=5
            )
        legacy, swept = results[False], results[True]
        assert swept.energy == legacy.energy
        assert np.array_equal(swept.parameters, legacy.parameters)
        assert swept.energy_history == legacy.energy_history
        assert swept.gradient_norms == legacy.gradient_norms
        assert swept.evaluations == legacy.evaluations

    def test_vqe_gradient_sweep_matches_legacy(self):
        n = 3
        ham = transverse_field_ising(n, j=1.0, h=0.6, periodic=False)
        ansatz = HardwareEfficientAnsatz(n, layers=1)
        rng = np.random.default_rng(9)
        params = rng.uniform(0, 2 * np.pi, ansatz.num_parameters)
        grads = {}
        for sweep in (False, True):
            vqe = VQE(
                ham, ansatz, FlatDDSimulator(threads=2), sweep=sweep
            )
            grads[sweep] = vqe.gradient(params)
        assert np.array_equal(grads[True], grads[False])

    def test_qaoa_sweep_matches_legacy(self):
        cost = maxcut([(0, 1), (1, 2), (0, 2)])
        results = {}
        for sweep in (False, True):
            qaoa = QAOA(
                cost,
                3,
                rounds=1,
                simulator=FlatDDSimulator(threads=2),
                sweep=sweep,
            )
            results[sweep] = qaoa.optimize(grid=5, sweeps=1, seed=1)
        legacy, swept = results[False], results[True]
        assert swept.expectation == legacy.expectation
        assert np.array_equal(swept.parameters, legacy.parameters)
        assert swept.expectation_history == legacy.expectation_history
        assert swept.best_bitstring == legacy.best_bitstring
        assert swept.best_bitstring_value == legacy.best_bitstring_value
        assert swept.evaluations == legacy.evaluations
