"""API-surface guards: docstrings, __all__ integrity, stable exports.

For a library this size these meta-tests keep the public surface honest:
every module documents itself, every advertised name exists, and the
top-level API cannot silently lose symbols.
"""

import importlib
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        yield importlib.import_module(info.name)


ALL_MODULES = sorted(_walk_modules(), key=lambda m: m.__name__)


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_every_module_has_a_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__


class TestAllIntegrity:
    @pytest.mark.parametrize(
        "module",
        [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_all_names_resolve(self, module):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"

    @pytest.mark.parametrize(
        "module",
        [m for m in ALL_MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_public_callables_documented(self, module):
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) and not isinstance(obj, type):
                assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"


class TestTopLevelExports:
    REQUIRED = {
        "Circuit", "Gate", "FlatDDSimulator", "DDSimulator",
        "StatevectorSimulator", "FlatDDConfig", "SimulationResult",
        "get_circuit", "parse_qasm", "to_qasm", "check_equivalence",
        "NoiseModel", "run_trajectories", "PauliString", "PauliSum",
        "sample_counts", "sample_from_dd",
    }

    def test_required_symbols_present(self):
        missing = self.REQUIRED - set(repro.__all__)
        assert not missing, f"top-level API lost symbols: {missing}"

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_star_import_is_clean(self):
        namespace = {}
        exec("from repro import *", namespace)  # noqa: S102 - deliberate
        for name in repro.__all__:
            if name != "__version__":
                assert name in namespace
