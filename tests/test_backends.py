"""Unit tests for the baseline simulators (Quantum++ and DDSIM models)."""

import math

import numpy as np
import pytest

from repro.backends import (
    DDSimulator,
    StatevectorSimulator,
    apply_gate_array,
)
from repro.circuits import Circuit, Gate, get_circuit
from repro.common.errors import SimulationError

from tests.conftest import assert_states_close, reference_state


class TestApplyGateArray:
    def test_single_qubit_gate(self):
        state = np.zeros(4, dtype=complex)
        state[0] = 1
        apply_gate_array(state, Gate("h", (0,)))
        s = 1 / math.sqrt(2)
        assert_states_close(state, np.array([s, s, 0, 0]))

    def test_controlled_gate_only_touches_control_one(self):
        state = np.array([0.5, 0.5, 0.5, 0.5], dtype=complex)
        apply_gate_array(state, Gate("cx", (1,), (0,)))
        # |01> <-> |11> swap (control = qubit 0).
        assert_states_close(state, np.array([0.5, 0.5, 0.5, 0.5]))
        state2 = np.array([0, 1, 0, 0], dtype=complex)
        apply_gate_array(state2, Gate("cx", (1,), (0,)))
        assert_states_close(state2, np.array([0, 0, 0, 1]))

    def test_two_qubit_gate_matches_kron(self):
        rng = np.random.default_rng(3)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        state /= np.linalg.norm(state)
        g = Gate("swap", (2, 0))
        # Reference via the explicit permutation matrix of SWAP(q2, q0).
        perm = np.zeros((8, 8))
        for i in range(8):
            b2, b1, b0 = (i >> 2) & 1, (i >> 1) & 1, i & 1
            perm[(b0 << 2) | (b1 << 1) | b2, i] = 1
        expected = perm @ state
        apply_gate_array(state, g)
        assert_states_close(state, expected)


class TestStatevectorSimulator:
    def test_modes_agree(self, small_circuit):
        a = StatevectorSimulator(mode="indexed").run(small_circuit)
        b = StatevectorSimulator(mode="reshape").run(small_circuit)
        assert_states_close(a.state, b.state)

    def test_threaded_agrees(self, small_circuit):
        a = StatevectorSimulator(threads=1).run(small_circuit)
        b = StatevectorSimulator(threads=4, use_thread_pool=True).run(
            small_circuit
        )
        assert_states_close(a.state, b.state)

    def test_norm_preserved(self, small_circuit):
        r = StatevectorSimulator().run(small_circuit)
        assert np.linalg.norm(r.state) == pytest.approx(1.0, abs=1e-9)

    def test_trace_covers_all_gates(self):
        c = get_circuit("ghz", 5)
        r = StatevectorSimulator().run(c)
        assert len(r.gate_trace) == len(c)
        assert all(g.phase == "array" for g in r.gate_trace)

    def test_memory_tracks_state_size(self):
        c = get_circuit("ghz", 10)
        r = StatevectorSimulator().run(c)
        assert r.peak_memory_bytes >= (1 << 10) * 16

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            StatevectorSimulator(mode="quantum")

    def test_result_metadata(self):
        r = StatevectorSimulator(threads=2).run(get_circuit("ghz", 3))
        assert r.metadata["threads"] == 2
        assert r.num_qubits == 3
        assert r.num_gates == 3


class TestDDSimulator:
    def test_agrees_with_array_baseline(self, small_circuit):
        dd = DDSimulator().run(small_circuit)
        ref = reference_state(small_circuit)
        fidelity = abs(np.vdot(dd.state, ref)) ** 2
        assert fidelity == pytest.approx(1.0, abs=1e-8)

    def test_trace_records_dd_sizes(self):
        c = get_circuit("ghz", 6)
        r = DDSimulator().run(c)
        sizes = [g.dd_size for g in r.gate_trace]
        assert all(s is not None and s >= 1 for s in sizes)
        # GHZ DD grows linearly along the CX chain.
        assert sizes[-1] > sizes[0]

    def test_timeout_reports_partial(self):
        c = get_circuit("dnn", 10)
        r = DDSimulator().run(c, max_seconds=0.05)
        assert r.metadata["timed_out"]
        assert r.metadata["gates_applied"] < len(c)

    def test_gate_dd_cache_effective(self):
        # GHZ repeats no gate, but QFT's swaps + repeated H do reuse.
        c = Circuit(3).h(0).h(0).h(0).cx(0, 1).cx(0, 1)
        r = DDSimulator().run(c)
        assert r.metadata["gate_dd_cache_hits"] == 3
        assert r.metadata["gate_dd_cache_misses"] == 2

    def test_gc_threshold_respected(self):
        sim = DDSimulator(gc_threshold=50)
        c = get_circuit("dnn", 6, layers=2)
        r = sim.run(c)  # should not crash and must stay correct
        ref = reference_state(c)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(1.0, abs=1e-8)

    def test_memory_grows_with_irregularity(self):
        regular = DDSimulator().run(get_circuit("ghz", 8))
        irregular = DDSimulator().run(get_circuit("dnn", 8, layers=3))
        assert irregular.peak_memory_bytes > regular.peak_memory_bytes


class TestSimulationResult:
    def test_probabilities_sum_to_one(self):
        r = StatevectorSimulator().run(get_circuit("qft", 4))
        assert r.probabilities().sum() == pytest.approx(1.0, abs=1e-9)

    def test_fidelity_against_array_and_result(self):
        r1 = StatevectorSimulator().run(get_circuit("ghz", 4))
        r2 = DDSimulator().run(get_circuit("ghz", 4))
        assert r1.fidelity(r2) == pytest.approx(1.0, abs=1e-9)
        assert r1.fidelity(r2.state) == pytest.approx(1.0, abs=1e-9)

    def test_peak_memory_mb_conversion(self):
        r = StatevectorSimulator().run(get_circuit("ghz", 3))
        assert r.peak_memory_mb == pytest.approx(
            r.peak_memory_bytes / (1024 * 1024)
        )
