"""Unit tests for the benchmark harness (workloads, runners, tables, model)."""

import numpy as np
import pytest

from repro.bench.model import ThreadScalingModel
from repro.bench.runners import compare_backends, run_backend
from repro.bench.tables import render_series, render_table, write_result
from repro.bench.workloads import DEEP_WORKLOADS, TABLE1_WORKLOADS, Workload, load
from repro.circuits import get_circuit
from repro.core import FlatDDSimulator


class TestWorkloads:
    def test_table1_has_twelve_circuits(self):
        assert len(TABLE1_WORKLOADS) == 12

    def test_deep_set_has_six_circuits(self):
        assert len(DEEP_WORKLOADS) == 6
        assert all(len(w.build()) > 700 for w in DEEP_WORKLOADS)

    def test_every_workload_builds(self):
        for w in TABLE1_WORKLOADS:
            c = w.build()
            assert c.num_qubits == w.n
            assert c.name == w.name

    def test_paper_mapping_recorded(self):
        assert all(w.paper_circuit for w in TABLE1_WORKLOADS)

    def test_load_by_name(self):
        w = load("ghz")
        assert w.family == "ghz"
        with pytest.raises(KeyError):
            load("nope")

    def test_regular_flags(self):
        assert load("adder").regular and load("ghz").regular
        assert not load("dnn_s").regular


class TestRunners:
    TINY = Workload("tiny", "supremacy", 6, {"cycles": 5}, timeout_seconds=30)

    def test_run_backend_kinds(self):
        for kind in ("flatdd", "ddsim", "quantumpp"):
            row = run_backend(kind, self.TINY, threads=2)
            assert row.runtime_seconds > 0
            assert row.memory_mb > 0
            assert not row.timed_out

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_backend("quokka", self.TINY)

    def test_compare_backends_cross_checks(self):
        row = compare_backends(self.TINY, threads=2)
        assert row.gates == len(self.TINY.build())
        assert row.ddsim_speedup > 0
        assert row.qpp_speedup > 0

    def test_timeout_formatting(self):
        row = run_backend(
            "ddsim",
            Workload("slow", "dnn", 10, {"layers": 8}, timeout_seconds=0.05),
        )
        assert row.timed_out
        assert row.runtime_str(0.05).startswith(">")


class TestTables:
    def test_render_table_alignment(self):
        text = render_table(
            "T", ["a", "long_header"], [["x", 1], ["yyyy", 22]]
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[2]
        # Columns align: every body line at least as wide as the header's
        # first column width.
        assert lines[4].startswith("x   ")

    def test_render_table_with_note(self):
        text = render_table("T", ["a"], [["1"]], note="hello")
        assert text.rstrip().endswith("hello")

    def test_render_series(self):
        text = render_series(
            "S", "x", [1, 2], {"f": [0.5, 0.25], "g": [1.0, 2.0]}
        )
        assert "0.5" in text and "2" in text

    def test_write_result_respects_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_result("unit_test_artifact", "content\n")
        assert path.startswith(str(tmp_path))
        assert (tmp_path / "unit_test_artifact.txt").read_text() == "content\n"


class TestThreadScalingModel:
    @pytest.fixture(scope="class")
    def calibrated(self):
        circuit = get_circuit("supremacy", 10, cycles=8)
        result = FlatDDSimulator(threads=4).run(circuit, keep_internals=True)
        return ThreadScalingModel.from_result(result, [1, 2, 4, 8])

    def test_costs_decrease_with_threads(self, calibrated):
        costs = [calibrated.cost(t) for t in (1, 2, 4, 8)]
        assert all(b <= a * 1.01 for a, b in zip(costs, costs[1:]))

    def test_runtime_monotone_and_saturating(self, calibrated):
        times = [calibrated.runtime(t) for t in (1, 2, 4, 8)]
        assert all(b <= a + 1e-12 for a, b in zip(times, times[1:]))
        # Fixed per-gate overhead bounds the speed-up below ideal.
        assert times[0] / times[-1] < 8.0

    def test_model_reproduces_reference_measurement(self, calibrated):
        t_ref = calibrated.reference_threads
        expected = (
            calibrated.dd_seconds
            + calibrated.conv_seconds / t_ref
            + calibrated.dmav_seconds
        )
        assert calibrated.runtime(t_ref) == pytest.approx(expected, rel=0.05)

    def test_kappa_and_tau_nonnegative(self, calibrated):
        assert calibrated.kappa >= 0
        assert calibrated.tau >= 0
