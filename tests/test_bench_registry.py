"""Benchmark record registry and the bench-compare regression gate."""

import json

import pytest

from repro.bench.registry import (
    BenchRecord,
    compare_records,
    load_bench_record,
    machine_fingerprint,
    metric_direction,
    write_bench_record,
)
from repro.cli import main


def _record(name, metrics, **kw):
    return BenchRecord(name=name, metrics=metrics, **kw)


class TestDirections:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("run_seconds", "lower"),
            ("wall_ms", "lower"),
            ("peak_bytes", "lower"),
            ("cache_misses", "lower"),
            ("partial_allocs", "lower"),
            ("jobs_per_second", "higher"),
            ("hit_rate", "higher"),
            ("array_phase_speedup", "higher"),
            ("plan_hits", "higher"),
            ("mystery_metric", "lower"),  # conservative default
        ],
    )
    def test_suffix_inference(self, name, expected):
        assert metric_direction(name) == expected


class TestRecords:
    def test_write_load_roundtrip_flattens_nested(self, tmp_path):
        path = write_bench_record(
            "demo",
            {"qft-20": {"speedup": 1.5, "skip_me": True, "none": None},
             "flat_seconds": 2.0},
            directory=str(tmp_path),
            config_digest="threads=4",
        )
        assert path.endswith("BENCH_demo.json")
        rec = load_bench_record(path)
        assert rec.metrics == {"qft-20.speedup": 1.5, "flat_seconds": 2.0}
        assert rec.config_digest == "threads=4"
        assert rec.machine == machine_fingerprint()

    def test_load_rejects_non_record(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"no": "metrics"}))
        with pytest.raises(ValueError, match="not a benchmark record"):
            load_bench_record(str(path))


class TestCompare:
    def test_identical_records_ok(self):
        metrics = {"run_seconds": 1.0, "jobs_per_second": 50.0}
        report = compare_records(
            _record("a", metrics), _record("b", dict(metrics))
        )
        assert report.ok
        assert not report.regressions
        assert "OK: no regressions" in report.format_text()

    def test_twenty_percent_slowdown_regresses_at_ten(self):
        report = compare_records(
            _record("a", {"run_seconds": 1.0}),
            _record("b", {"run_seconds": 1.2}),
            threshold=0.10,
        )
        assert not report.ok
        (row,) = report.regressions
        assert row.worsening == pytest.approx(0.2)
        assert "FAIL: 1 metric(s) regressed" in report.format_text()

    def test_direction_flips_for_throughput(self):
        # Throughput dropping is the regression; rising is an improvement.
        report = compare_records(
            _record("a", {"jobs_per_second": 100.0}),
            _record("b", {"jobs_per_second": 79.0}),
            threshold=0.20,
        )
        assert not report.ok
        up = compare_records(
            _record("a", {"jobs_per_second": 100.0}),
            _record("b", {"jobs_per_second": 150.0}),
            threshold=0.20,
        )
        assert up.ok and up.rows[0].improved

    def test_per_metric_threshold_overrides_default(self):
        report = compare_records(
            _record("a", {"run_seconds": 1.0}),
            _record("b", {"run_seconds": 1.2}),
            threshold=0.10,
            per_metric_threshold={"run_seconds": 0.5},
        )
        assert report.ok

    def test_zero_baseline_uses_absolute_gate(self):
        report = compare_records(
            _record("a", {"errors": 0.0}),
            _record("b", {"errors": 0.05}),
            threshold=0.10,
        )
        assert report.ok  # 0 -> 0.05 below the 0.10 absolute gate
        report = compare_records(
            _record("a", {"errors": 0.0}),
            _record("b", {"errors": 2.0}),
            threshold=0.10,
        )
        assert not report.ok

    def test_disjoint_metrics_reported_not_failed(self):
        report = compare_records(
            _record("a", {"old_seconds": 1.0, "shared_seconds": 1.0}),
            _record("b", {"new_seconds": 1.0, "shared_seconds": 1.0}),
        )
        assert report.ok
        assert report.missing_in_current == ["old_seconds"]
        assert report.missing_in_baseline == ["new_seconds"]

    def test_machine_and_config_mismatch_warn(self):
        report = compare_records(
            _record("a", {"x_seconds": 1.0},
                    machine={"cpus": 1}, config_digest="t=1"),
            _record("b", {"x_seconds": 1.0},
                    machine={"cpus": 64}, config_digest="t=4"),
        )
        assert report.ok
        assert len(report.warnings) == 2

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_records(
                _record("a", {}), _record("b", {}), threshold=-0.1
            )


class TestCLI:
    @pytest.fixture
    def records(self, tmp_path):
        base = {"run_seconds": 1.0, "jobs_per_second": 100.0}
        paths = {
            "base": write_bench_record("base", base, str(tmp_path)),
            "same": write_bench_record("same", dict(base), str(tmp_path)),
            "regressed": write_bench_record(
                "regressed",
                {"run_seconds": 1.2, "jobs_per_second": 100.0},
                str(tmp_path),
            ),
        }
        return paths

    def test_identical_exits_zero(self, records, capsys):
        code = main(["bench-compare", records["base"], records["same"]])
        assert code == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_synthetic_regression_exits_nonzero(self, records, capsys):
        code = main(
            ["bench-compare", records["base"], records["regressed"],
             "--threshold", "0.10"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "run_seconds" in out

    def test_report_only_masks_exit_code(self, records, capsys):
        code = main(
            ["bench-compare", records["base"], records["regressed"],
             "--report-only"]
        )
        assert code == 0
        assert "FAIL" in capsys.readouterr().out

    def test_metric_threshold_flag(self, records):
        code = main(
            ["bench-compare", records["base"], records["regressed"],
             "--metric-threshold", "run_seconds=0.5"]
        )
        assert code == 0

    def test_json_output(self, records, capsys):
        code = main(
            ["bench-compare", records["base"], records["regressed"], "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["regressions"] == ["run_seconds"]

    def test_bad_metric_threshold_spec_errors(self, records, capsys):
        code = main(
            ["bench-compare", records["base"], records["same"],
             "--metric-threshold", "garbage"]
        )
        assert code == 2

    def test_missing_file_errors(self, tmp_path, capsys):
        code = main(
            ["bench-compare", str(tmp_path / "nope.json"),
             str(tmp_path / "nada.json")]
        )
        assert code == 2

    def test_committed_seed_baseline_compares_clean(self, capsys):
        # The CI report step diffs against this committed file; it must
        # stay loadable and self-consistent.
        import os

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        baseline = os.path.join(
            root, "benchmarks", "baselines", "BENCH_plan_cache_smoke.json"
        )
        code = main(["bench-compare", baseline, baseline])
        assert code == 0
        assert "OK: no regressions" in capsys.readouterr().out
