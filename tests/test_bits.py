"""Unit tests for repro.common.bits."""

import numpy as np
import pytest

from repro.common.bits import (
    bit,
    clear_bit,
    ilog2,
    indices_matching,
    indices_with_bit,
    insert_zero_bit,
    is_power_of_two,
    set_bit,
)


class TestPowerOfTwo:
    def test_powers_accepted(self):
        for k in range(20):
            assert is_power_of_two(1 << k)

    def test_non_powers_rejected(self):
        for x in (0, -1, -4, 3, 6, 12, 1023):
            assert not is_power_of_two(x)

    def test_ilog2_exact(self):
        for k in range(20):
            assert ilog2(1 << k) == k

    @pytest.mark.parametrize("bad", [0, -2, 3, 12])
    def test_ilog2_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            ilog2(bad)


class TestBitOps:
    def test_bit_extraction(self):
        assert bit(0b1010, 1) == 1
        assert bit(0b1010, 0) == 0
        assert bit(0b1010, 3) == 1

    def test_set_clear_roundtrip(self):
        x = 0b0101
        assert bit(set_bit(x, 1), 1) == 1
        assert bit(clear_bit(x, 0), 0) == 0
        assert clear_bit(set_bit(x, 7), 7) == x

    def test_insert_zero_bit_preserves_order(self):
        # Inserting at position k maps i -> an index whose bit k is zero,
        # monotonically.
        for k in range(4):
            outs = [insert_zero_bit(i, k) for i in range(8)]
            assert outs == sorted(outs)
            assert all(bit(o, k) == 0 for o in outs)

    def test_insert_zero_bit_matches_enumeration(self):
        n, k = 5, 2
        expected = [i for i in range(1 << n) if bit(i, k) == 0]
        got = [insert_zero_bit(i, k) for i in range(1 << (n - 1))]
        assert got == expected


class TestIndexSets:
    def test_indices_with_bit_partition(self):
        n = 6
        for k in range(n):
            zeros = indices_with_bit(n, k, 0)
            ones = indices_with_bit(n, k, 1)
            assert zeros.size == ones.size == 1 << (n - 1)
            together = np.sort(np.concatenate([zeros, ones]))
            np.testing.assert_array_equal(together, np.arange(1 << n))

    def test_indices_with_bit_values(self):
        n = 4
        for k in range(n):
            for v in (0, 1):
                idx = indices_with_bit(n, k, v)
                assert all((int(i) >> k) & 1 == v for i in idx)

    def test_indices_matching_single_constraint(self):
        got = indices_matching(3, {1: 1})
        expected = np.array([i for i in range(8) if (i >> 1) & 1])
        np.testing.assert_array_equal(got, expected)

    def test_indices_matching_multiple_constraints(self):
        got = indices_matching(4, {0: 1, 3: 0})
        expected = np.array(
            [i for i in range(16) if (i & 1) and not (i >> 3) & 1]
        )
        np.testing.assert_array_equal(got, expected)

    def test_indices_matching_empty_constraints(self):
        np.testing.assert_array_equal(
            indices_matching(3, {}), np.arange(8)
        )

    def test_indices_matching_rejects_bad_value(self):
        with pytest.raises(ValueError):
            indices_matching(3, {0: 2})

    def test_indices_matching_sorted(self):
        idx = indices_matching(5, {2: 1, 4: 1})
        assert np.all(np.diff(idx) > 0)
