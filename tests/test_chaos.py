"""Chaos harness tests: schedules, injectors, invariants, planted bugs.

The fast tests pin down the deterministic parts (seeded schedule
generation, JSON replay, shrinking, the planted-bug plumbing).  The
fleet tests run one real chaos iteration per fault family and prove the
two ends of the spectrum: a healthy stack survives the schedule with
every invariant intact, and a planted recovery bug is *caught* by the
invariant checker (and shrunk to the minimal schedule, in the slow
tier).
"""

import json

import pytest

from repro.chaos import (
    ChaosFault,
    ChaosSchedule,
    FAULT_KINDS,
    REGIMES,
    load_schedule,
    plant_fault,
    run_chaos_campaign,
    run_chaos_iteration,
    schedule_for_iteration,
    schedule_to_json,
    shrink_schedule,
)
from repro.chaos.runner import harness_config, reference_results
from repro.chaos.schedule import PROCESS_FAULTS, TRANSPORT_FAULTS

pytestmark = pytest.mark.serve


@pytest.fixture(scope="module")
def reference():
    """In-process reference results for the harness workload (computed
    once; every chaos iteration compares bit-for-bit against these)."""
    return reference_results(harness_config())


class TestScheduleGeneration:
    def test_same_seed_same_schedule(self):
        for iteration in range(5):
            a = schedule_for_iteration(7, iteration)
            b = schedule_for_iteration(7, iteration)
            assert a == b

    def test_iterations_draw_distinct_schedules(self):
        schedules = {
            schedule_for_iteration(0, it).describe() for it in range(10)
        }
        assert len(schedules) > 1

    def test_regime_restriction_is_honored(self):
        for iteration in range(10):
            sched = schedule_for_iteration(
                3, iteration, regimes=["transport"]
            )
            assert sched.regime == "transport"
            for fault in sched.faults:
                assert fault.kind in TRANSPORT_FAULTS

    def test_process_fault_caps(self):
        # Schedules stay survivable by construction: bounded process
        # faults, at most one crashloop.
        for iteration in range(50):
            sched = schedule_for_iteration(11, iteration)
            assert sched.process_fault_count() <= 3
            crashloops = sum(
                1 for f in sched.faults if f.kind == "crashloop"
            )
            assert crashloops <= 1

    def test_every_regime_covers_only_known_kinds(self):
        for kinds in REGIMES.values():
            assert set(kinds) <= set(FAULT_KINDS)
        assert set(PROCESS_FAULTS) <= set(FAULT_KINDS)


class TestScheduleJson:
    def test_round_trip(self, tmp_path):
        sched = ChaosSchedule(
            seed=5,
            iteration=2,
            regime="mixed",
            faults=(
                ChaosFault(at=0, kind="kill_worker"),
                ChaosFault(at=3, kind="delay_frame", arg=0.05),
            ),
        )
        path = schedule_to_json(sched, str(tmp_path / "sched.json"))
        assert load_schedule(path) == sched
        doc = json.loads((tmp_path / "sched.json").read_text())
        assert doc["format"] == "repro-chaos-schedule-v1"

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            ChaosFault(at=0, kind="meteor-strike")


class TestShrinking:
    def test_shrinks_to_the_guilty_fault(self):
        sched = ChaosSchedule(
            seed=0,
            iteration=0,
            regime="mixed",
            faults=(
                ChaosFault(at=0, kind="duplicate_frame"),
                ChaosFault(at=1, kind="kill_worker"),
                ChaosFault(at=2, kind="torn_wal"),
                ChaosFault(at=3, kind="drop_conn"),
            ),
        )
        shrunk = shrink_schedule(
            sched,
            lambda s: any(f.kind == "kill_worker" for f in s.faults),
        )
        assert [f.kind for f in shrunk.faults] == ["kill_worker"]


class TestPlantFault:
    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError, match="unknown planted chaos bug"):
            plant_fault("not-a-bug").__enter__()

    def test_none_is_a_noop_context(self):
        with plant_fault(None):
            pass

    def test_respawn_accounting_patch_is_scoped(self):
        from repro.cluster.breaker import SlotBreaker

        original = SlotBreaker.record_failure
        with plant_fault("respawn-accounting"):
            assert SlotBreaker.record_failure is not original
        assert SlotBreaker.record_failure is original

    def test_resume_reexecute_patch_is_scoped(self):
        from repro.serve import journal as journal_mod

        original = journal_mod.replay_journal
        with plant_fault("resume-reexecute"):
            assert journal_mod.replay_journal is not original
        assert journal_mod.replay_journal is original


class TestChaosIteration:
    def test_transport_schedule_all_invariants_hold(self, reference):
        sched = ChaosSchedule(
            seed=0,
            iteration=0,
            regime="transport",
            faults=(
                ChaosFault(at=0, kind="corrupt_frame"),
                ChaosFault(at=1, kind="duplicate_frame"),
                ChaosFault(at=2, kind="corrupt_result"),
            ),
        )
        outcome = run_chaos_iteration(sched, reference)
        assert outcome.ok, outcome.violations
        assert outcome.fired.get("corrupt_frame", 0) >= 1
        assert outcome.fired.get("duplicate_frame", 0) >= 1

    def test_kill_worker_recovers_bit_identical(self, reference):
        sched = ChaosSchedule(
            seed=0,
            iteration=0,
            regime="process",
            faults=(ChaosFault(at=0, kind="kill_worker"),),
        )
        outcome = run_chaos_iteration(sched, reference)
        assert outcome.ok, outcome.violations
        assert outcome.fired.get("kill_worker", 0) == 1

    def test_disk_schedule_resume_still_converges(self, reference):
        sched = ChaosSchedule(
            seed=0,
            iteration=0,
            regime="disk",
            faults=(
                ChaosFault(at=0, kind="journal_error"),
                ChaosFault(at=1, kind="torn_wal"),
            ),
        )
        outcome = run_chaos_iteration(sched, reference)
        assert outcome.ok, outcome.violations

    def test_resume_reexecute_bug_is_caught(self, reference):
        # The planted resume bug drops the journaled state payloads, so
        # the iteration's resume pass re-executes journaled-DONE jobs --
        # exactly what the zero-re-execution invariant exists to catch.
        sched = ChaosSchedule(
            seed=0, iteration=0, regime="mixed", faults=()
        )
        with plant_fault("resume-reexecute"):
            outcome = run_chaos_iteration(sched, reference)
        assert not outcome.ok
        assert any("re-executed" in v for v in outcome.violations)


class TestPlantedRespawnBug:
    SCHEDULE = ChaosSchedule(
        seed=0,
        iteration=0,
        regime="process",
        faults=(
            # stop_worker stalls slot 0's job past the heartbeat timeout
            # (keeping work pending) while crashloop cycles slot 1; with
            # a healthy breaker the slot quarantines after 3 deaths.
            ChaosFault(at=0, kind="stop_worker"),
            ChaosFault(at=1, kind="crashloop"),
        ),
    )

    def test_respawn_accounting_bug_is_caught(self):
        result = run_chaos_campaign(
            seed=0,
            iterations=1,
            schedule=self.SCHEDULE,
            shrink=False,
            plant_bug="respawn-accounting",
        )
        assert not result.ok
        (failure,) = result.failures
        text = " ".join(failure.violations)
        assert "respawns exceeds the bound" in text
        assert "never quarantined" in text

    @pytest.mark.slow
    def test_caught_bug_shrinks_to_minimal_schedule(self, tmp_path):
        padded = self.SCHEDULE.with_faults(
            self.SCHEDULE.faults
            + (
                ChaosFault(at=2, kind="duplicate_frame"),
                ChaosFault(at=3, kind="delay_frame", arg=0.05),
            )
        )
        result = run_chaos_campaign(
            seed=0,
            iterations=1,
            schedule=padded,
            shrink=True,
            shrink_max_checks=8,
            plant_bug="respawn-accounting",
            out_dir=str(tmp_path),
        )
        assert not result.ok
        (failure,) = result.failures
        shrunk_kinds = [f["kind"] for f in failure.shrunk["faults"]]
        assert shrunk_kinds == ["stop_worker", "crashloop"]
        # Both schedules landed as replayable JSON artifacts.
        assert load_schedule(failure.schedule_path) == padded
        assert [
            f.kind for f in load_schedule(failure.shrunk_path).faults
        ] == shrunk_kinds
