"""Unit tests for the Circuit container."""

import numpy as np
import pytest

from repro.circuits import Circuit, Gate
from repro.common.errors import CircuitError

from tests.conftest import reference_state


class TestConstruction:
    def test_fluent_builders_chain(self):
        c = Circuit(3).h(0).cx(0, 1).rz(0.5, 2).ccx(0, 1, 2)
        assert len(c) == 4
        assert c.gates[1].controls == (0,)
        assert c.gates[3].controls == (0, 1)

    def test_add_splits_alias_controls(self):
        c = Circuit(3)
        c.add("cswap", 2, 0, 1)
        g = c.gates[0]
        assert g.controls == (2,)
        assert g.targets == (0, 1)

    def test_qubit_bounds_enforced(self):
        c = Circuit(2)
        with pytest.raises(CircuitError):
            c.h(2)

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(0)

    def test_gates_validated_on_init(self):
        with pytest.raises(CircuitError):
            Circuit(1, [Gate("h", (3,))])


class TestIntrospection:
    def test_depth_parallel_gates(self):
        c = Circuit(4).h(0).h(1).h(2).h(3)
        assert c.depth() == 1

    def test_depth_serial_chain(self):
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        assert c.depth() == 3

    def test_gate_counts(self):
        c = Circuit(2).h(0).h(1).cx(0, 1)
        assert c.gate_counts == {"h": 2, "cx": 1}

    def test_two_qubit_gate_count(self):
        c = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2).swap(0, 2)
        assert c.two_qubit_gate_count == 3

    def test_used_qubits(self):
        c = Circuit(5).h(1).cx(1, 3)
        assert c.used_qubits() == {1, 3}

    def test_slicing_returns_circuit(self):
        c = Circuit(2).h(0).cx(0, 1).x(1)
        head = c[:2]
        assert isinstance(head, Circuit)
        assert len(head) == 2
        assert c[2].name == "x"

    def test_iteration(self):
        c = Circuit(2).h(0).x(1)
        assert [g.name for g in c] == ["h", "x"]

    def test_repr_mentions_stats(self):
        c = Circuit(2).h(0)
        assert "qubits=2" in repr(c)


class TestInverse:
    def test_inverse_undoes_circuit(self):
        c = Circuit(3).h(0).cx(0, 1).t(2).rz(0.7, 1).swap(0, 2).s(1)
        full = Circuit(3, [*c.gates, *c.inverse().gates])
        state = reference_state(full)
        expected = np.zeros(8)
        expected[0] = 1
        np.testing.assert_allclose(state, expected, atol=1e-10)

    def test_inverse_reverses_order(self):
        c = Circuit(2).h(0).x(1)
        inv = c.inverse()
        assert [g.name for g in inv] == ["x", "h"]

    def test_inverse_flips_phase_gates(self):
        c = Circuit(1).s(0).t(0)
        inv = c.inverse()
        assert [g.name for g in inv] == ["tdg", "sdg"]

    def test_inverse_negates_rotations(self):
        c = Circuit(1).rx(0.3, 0)
        assert c.inverse().gates[0].params == (-0.3,)

    def test_sqrt_gates_invert_via_daggers(self):
        c = Circuit(1).add("sx", 0).add("sw", 0)
        inv = c.inverse()
        assert [g.name for g in inv] == ["swdg", "sxdg"]

    def test_unsupported_gate_raises(self):
        from repro.circuits.generators.algorithms import UnitaryGate

        c = Circuit(2)
        c.append(UnitaryGate(np.eye(4), (0, 1)))
        with pytest.raises(CircuitError):
            c.inverse()
