"""Unit tests for circuit layering and summaries."""

import pytest

from repro.circuits import Circuit, get_circuit
from repro.circuits.analysis import layerize, summarize


class TestLayerize:
    def test_independent_gates_share_a_layer(self):
        c = Circuit(4).h(0).h(1).h(2).h(3)
        layers = layerize(c)
        assert len(layers) == 1
        assert len(layers[0]) == 4

    def test_dependent_gates_stack(self):
        c = Circuit(2).h(0).cx(0, 1).h(1)
        layers = layerize(c)
        assert [len(l) for l in layers] == [1, 1, 1]

    def test_mixed_dependencies(self):
        c = Circuit(3).h(0).h(1).cx(0, 1).h(2)
        layers = layerize(c)
        # h(2) is independent and fits layer 0; cx waits for both h's.
        assert len(layers) == 2
        assert {g.name for g in layers[0]} == {"h"}
        assert layers[1][0].name == "cx"

    def test_layer_count_equals_depth(self):
        for family, n in (("ghz", 6), ("qft", 5), ("adder", 8)):
            c = get_circuit(family, n)
            assert len(layerize(c)) == c.depth()

    def test_all_gates_preserved(self):
        c = get_circuit("supremacy", 6, cycles=4)
        layers = layerize(c)
        assert sum(len(l) for l in layers) == len(c)


class TestSummarize:
    def test_ghz_summary(self):
        s = summarize(get_circuit("ghz", 6))
        assert s.num_qubits == 6
        assert s.num_gates == 6
        assert s.depth == 6
        assert s.two_qubit_gates == 5
        assert s.entangling_depth == 5
        assert s.two_qubit_fraction == pytest.approx(5 / 6)

    def test_parallel_circuit_has_high_parallelism(self):
        c = Circuit(8)
        for q in range(8):
            c.h(q)
        s = summarize(c)
        assert s.parallelism == pytest.approx(8.0)
        assert s.entangling_depth == 0

    def test_supremacy_is_entangling_dense(self):
        s = summarize(get_circuit("supremacy", 9, cycles=8))
        assert s.entangling_depth >= 8 // 2
        assert s.parallelism > 2.0

    def test_gate_counts_match_circuit(self):
        c = get_circuit("qft", 5)
        s = summarize(c)
        assert s.gate_counts == dict(c.gate_counts)
