"""Unit tests for the command-line interface."""

import json

import pytest

from repro.circuits import get_circuit, to_qasm
from repro.cli import main


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "ghz.qasm"
    path.write_text(to_qasm(get_circuit("ghz", 4)))
    return str(path)


class TestFamilies:
    def test_lists_known_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "supremacy" in out and "ghz" in out and "grover" in out


class TestSimulate:
    def test_generator_family(self, capsys):
        code = main(
            ["simulate", "--family", "ghz", "--qubits", "4", "--top", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0000" in out and "1111" in out

    def test_qasm_file(self, qasm_file, capsys):
        assert main(["simulate", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "runtime_seconds" in out

    def test_json_output(self, capsys):
        assert main(
            ["simulate", "--family", "ghz", "--qubits", "3", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["qubits"] == 3
        assert payload["gates"] == 3
        assert "top_outcomes" in payload

    def test_sampling_mode(self, capsys):
        assert main(
            ["simulate", "--family", "ghz", "--qubits", "3",
             "--shots", "100", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert sum(payload["counts"].values()) == 100
        assert set(payload["counts"]) <= {"000", "111"}

    @pytest.mark.parametrize("backend", ["flatdd", "ddsim", "quantumpp"])
    def test_all_backends(self, backend, capsys):
        assert main(
            ["simulate", "--family", "qft", "--qubits", "4",
             "--backend", backend]
        ) == 0

    def test_missing_input_errors(self, capsys):
        assert main(["simulate"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_errors(self, capsys):
        assert main(["simulate", "/nonexistent.qasm"]) == 2


class TestSweep:
    @pytest.fixture
    def template_file(self, tmp_path):
        from repro.circuits import Circuit

        c = Circuit(3, name="tpl")
        for q in range(3):
            c.h(q)
        for q in range(3):
            c.ry(0.0, q)
        path = tmp_path / "tpl.qasm"
        path.write_text(to_qasm(c))
        return str(path)

    def test_points_json_counters(self, template_file, capsys):
        assert main(
            ["sweep", template_file, "--points", "4", "--threads", "2",
             "--force-convert-at", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == 4
        assert payload["mode"] == "batched"
        counters = payload["obs"]["counters"]
        assert counters["dmav.sweep.rows"] == 4
        assert counters["dmav.sweep.unique_rows"] == 4
        assert (
            counters["dmav.sweep.gates_batched"]
            + counters["dmav.sweep.gates_rowloop"]
        ) > 0

    def test_params_file(self, template_file, tmp_path, capsys):
        rows = tmp_path / "rows.json"
        rows.write_text(json.dumps([[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]]))
        assert main(
            ["sweep", template_file, "--params", str(rows), "--threads", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "rows: 2" in out

    def test_params_jsonl_file(self, template_file, tmp_path, capsys):
        rows = tmp_path / "rows.jsonl"
        rows.write_text("# rows\n[0.1, 0.2, 0.3]\n[0.4, 0.5, 0.6]\n")
        assert main(
            ["sweep", template_file, "--params", str(rows), "--threads", "2",
             "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["rows"] == 2

    def test_requires_exactly_one_row_source(self, template_file, capsys):
        assert main(["sweep", template_file]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_bad_params_file_errors(self, template_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"not": "rows"}')
        assert main(
            ["sweep", template_file, "--params", str(bad)]
        ) == 2
        assert "parameter rows" in capsys.readouterr().err

    def test_memory_budget_breach_exits_3_with_snapshot(
        self, template_file, tmp_path, capsys
    ):
        ckpt = tmp_path / "sweep.ckpt"
        code = main(
            ["sweep", template_file, "--points", "3", "--threads", "2",
             "--force-convert-at", "0", "--memory-budget", "1",
             "--checkpoint", str(ckpt)]
        )
        assert code == 3
        assert ckpt.exists()
        from repro.resilience.snapshot import read_snapshot

        assert read_snapshot(str(ckpt)).phase == "sweep"


class TestCompare:
    def test_compare_reports_all_backends(self, capsys):
        assert main(
            ["compare", "--family", "ghz", "--qubits", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "flatdd" in out and "ddsim" in out and "quantumpp" in out
        assert "fidelity" in out


class TestEquivalence:
    def test_equivalent_files(self, qasm_file, capsys):
        assert main(["equivalence", qasm_file, qasm_file]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_inequivalent_files(self, qasm_file, tmp_path, capsys):
        other = tmp_path / "other.qasm"
        c = get_circuit("ghz", 4)
        c.t(2)
        other.write_text(to_qasm(c))
        assert main(["equivalence", qasm_file, str(other)]) == 1
        assert "NOT EQUIVALENT" in capsys.readouterr().out


class TestSummarize:
    def test_summary_output(self, capsys):
        assert main(["summarize", "--family", "qft", "--qubits", "5"]) == 0
        out = capsys.readouterr().out
        assert "depth" in out and "two-qubit gates" in out
        assert "qubits:            5" in out


class TestTranspile:
    def test_stdout_qasm(self, capsys):
        assert main(["transpile", "--family", "ghz", "--qubits", "3"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OPENQASM 2.0;")
        assert "cx" in out

    def test_output_file_roundtrips(self, tmp_path, capsys):
        import numpy as np

        from repro.backends import StatevectorSimulator
        from repro.circuits import get_circuit, parse_qasm

        dest = tmp_path / "out.qasm"
        assert main(
            ["transpile", "--family", "qft", "--qubits", "4",
             "-o", str(dest)]
        ) == 0
        transpiled = parse_qasm(dest.read_text())
        ref = StatevectorSimulator().run(get_circuit("qft", 4)).state
        got = StatevectorSimulator().run(transpiled).state
        fid = abs(np.vdot(ref, got)) ** 2
        assert fid == pytest.approx(1.0, abs=1e-8)


class TestReport:
    def test_collects_result_files(self, tmp_path, capsys):
        (tmp_path / "exp_a.txt").write_text("Table A\n=======\nrow\n")
        (tmp_path / "exp_b.txt").write_text("Table B\n=======\nrow\n")
        dest = tmp_path / "report.txt"
        assert main(
            ["report", "--results-dir", str(tmp_path), "-o", str(dest)]
        ) == 0
        text = dest.read_text()
        assert "Table A" in text and "Table B" in text

    def test_empty_dir_errors(self, tmp_path, capsys):
        assert main(["report", "--results-dir", str(tmp_path)]) == 1
        assert "no result files" in capsys.readouterr().err

    def test_summarizes_telemetry_jsonl(self, tmp_path, capsys):
        from repro.obs import MetricsRegistry, TelemetrySampler

        reg = MetricsRegistry()
        reg.counter("serve.jobs.done").inc(5)
        reg.histogram("serve.latency.e2e").observe(0.02)
        path = str(tmp_path / "tele.jsonl")
        sampler = TelemetrySampler(reg, jsonl_path=path)
        sampler.sample_now()
        sampler.stop()
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "2 sample(s)" in out
        assert "serve.latency.e2e" in out
        assert "serve.jobs.done" in out

    def test_summarizes_chrome_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        assert main(
            ["simulate", "--family", "ghz", "--qubits", "4",
             "--trace", trace]
        ) == 0
        capsys.readouterr()
        assert main(["report", trace]) == 0
        out = capsys.readouterr().out
        assert "span(s)" in out
        assert "phase" in out

    def test_rejects_unrecognizable_file(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("plain text, not a trace\n")
        assert main(["report", str(path)]) == 2


class TestChaosCli:
    def test_list_faults(self, capsys):
        assert main(["chaos", "--list-faults"]) == 0
        out = capsys.readouterr().out
        assert "transport" in out and "kill_worker" in out

    def test_unknown_regime_errors(self, capsys):
        assert main(["chaos", "--regimes", "weather"]) == 2
        assert "unknown chaos regime" in capsys.readouterr().err

    def test_unknown_plant_bug_errors(self, capsys):
        assert main(["chaos", "--plant-bug", "nope"]) == 2
        assert "unknown planted chaos bug" in capsys.readouterr().err

    @pytest.mark.serve
    def test_schedule_replay_json_summary(self, tmp_path, capsys):
        from repro.chaos import ChaosFault, ChaosSchedule, schedule_to_json

        sched = ChaosSchedule(
            seed=0, iteration=0, regime="transport",
            faults=(ChaosFault(at=0, kind="duplicate_frame"),),
        )
        path = schedule_to_json(sched, str(tmp_path / "sched.json"))
        assert main(["chaos", "--schedule", path, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["ok"] is True
        assert summary["runs"] == 1
        assert summary["fault_counts"].get("duplicate_frame") == 1


class TestServeJournalFsyncFlag:
    def test_requires_journal_path(self, tmp_path, capsys):
        manifest = tmp_path / "m.jsonl"
        manifest.write_text(
            json.dumps({"family": "ghz", "qubits": 3}) + "\n"
        )
        assert main(["serve", str(manifest), "--journal-fsync"]) == 2
        err = capsys.readouterr().err
        assert "--journal-fsync requires --journal" in err

    @pytest.mark.serve
    def test_fsync_flag_journals_durably(self, tmp_path, capsys):
        manifest = tmp_path / "m.jsonl"
        manifest.write_text(
            json.dumps({"family": "ghz", "qubits": 3}) + "\n"
        )
        journal = tmp_path / "wal.jsonl"
        assert main([
            "serve", str(manifest), "--threads", "1",
            "--journal", str(journal), "--journal-fsync", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["states"] == {"DONE": 1}
        records = [
            json.loads(line)
            for line in journal.read_text().splitlines()
            if line.strip()
        ]
        assert any(r.get("to") == "DONE" for r in records)
