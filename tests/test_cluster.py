"""Process-fleet integration tests: dispatch, faults, and durability.

These spawn real worker processes, so they are the slowest serve tests;
each one keeps its fleet small (2 workers) and its circuits tiny.  The
non-negotiable assertions: fleet results are **bit-identical** to the
single-process service, a SIGKILLed worker's in-flight job requeues and
completes, and a SIGKILLed *fleet* finishes under ``--resume`` with the
journaled jobs served from cache.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.cluster.broker import ClusterService
from repro.common.config import ServeConfig
from repro.serve import JobState, run_manifest

pytestmark = pytest.mark.serve

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_manifest(path, lines):
    with open(path, "w") as fh:
        for line in lines:
            fh.write(json.dumps(line) + "\n")
    return str(path)


MANIFEST_LINES = [
    {"family": "ghz", "qubits": 5, "shots": 25, "repeat": 3},
    {"family": "qft", "qubits": 4, "shots": 10},
    {"family": "ghz", "qubits": 6},
    {"family": "wstate", "qubits": 4},
]


def run_single_process(manifest):
    report, jobs = run_manifest(manifest, config=ServeConfig(threads=1))
    return report, {j.job_id: j for j in jobs}


class TestClusterService:
    def test_fleet_matches_single_process_bit_identical(self, tmp_path):
        manifest = write_manifest(tmp_path / "m.jsonl", MANIFEST_LINES)
        ref_report, ref_jobs = run_single_process(manifest)
        assert ref_report.ok
        svc = ClusterService(ServeConfig(threads=1), processes=2)
        try:
            report, jobs = run_manifest(manifest, service=svc)
        finally:
            svc.close()
        assert report.ok
        assert report.states == ref_report.states
        assert report.cluster is not None
        assert report.cluster["results"] >= 1
        for job in jobs:
            ref = ref_jobs[job.job_id]
            assert job.state is JobState.DONE
            assert np.array_equal(job.result.state, ref.result.state), (
                f"job {job.job_id} state differs from single-process run"
            )
            assert job.result.counts == ref.result.counts

    def test_dedup_fans_out_from_cache(self):
        svc = ClusterService(ServeConfig(threads=1), processes=2)
        try:
            ids = [
                svc.submit(get_circuit("ghz", 4), shots=10, sample_seed=5)
                for _ in range(6)
            ]
            report = svc.drain()
            results = [svc.result(i) for i in ids]
        finally:
            svc.close()
        assert report.ok and report.deduped_jobs == 5
        # One simulation crossed the wire; five fan-outs came from cache.
        assert report.cluster["dispatched"] == 1
        assert sum(1 for r in results if r.cache_hit) == 5
        first = results[0].state
        for r in results[1:]:
            assert np.array_equal(r.state, first)
            assert r.counts == results[0].counts

    def test_sigkill_worker_mid_batch_requeues_and_completes(self, tmp_path):
        manifest = write_manifest(tmp_path / "m.jsonl", MANIFEST_LINES)
        _ref_report, ref_jobs = run_single_process(manifest)
        svc = ClusterService(ServeConfig(threads=1, max_retries=2), processes=2)
        dispatcher = svc.pool
        original_dispatch = dispatcher._dispatch
        killed = []

        def murderous_dispatch(slot, group, job, inflight, dispatch_counts):
            ok = original_dispatch(
                slot, group, job, inflight, dispatch_counts
            )
            if ok and not killed:
                # SIGKILL the worker right after its first job crossed
                # the wire: the broker must detect the death, requeue,
                # and finish the batch on the survivors/respawns.
                killed.append(slot)
                os.kill(dispatcher.supervisor.pid(slot), signal.SIGKILL)
            return ok

        dispatcher._dispatch = murderous_dispatch
        try:
            report, jobs = run_manifest(manifest, service=svc)
        finally:
            svc.close()
        assert killed, "no dispatch happened; the kill never fired"
        assert report.cluster["worker_deaths"] >= 1
        assert report.cluster["requeues"] >= 1
        assert report.states == {"DONE": len(jobs)}
        for job in jobs:
            ref = ref_jobs[job.job_id]
            assert np.array_equal(job.result.state, ref.result.state)
            assert job.result.counts == ref.result.counts

    def test_failed_job_crosses_wire_as_fault_record(self):
        # Sweep jobs are unsupported on ddsim: the worker reports a
        # permanent FAILED record; healthy jobs in the batch still run.
        svc = ClusterService(ServeConfig(threads=1), processes=1)
        try:
            from repro.circuits.circuit import Circuit

            sweep = Circuit(2).rx(0.0, 0)
            bad = svc.submit(
                sweep, backend="ddsim", param_sets=[(0.1,), (0.2,)]
            )
            good = svc.submit(get_circuit("ghz", 4))
            report = svc.drain()
            assert svc.poll(bad).state is JobState.FAILED
            assert "permanent" in svc.poll(bad).error
            assert svc.poll(good).state is JobState.DONE
        finally:
            svc.close()
        assert report.states == {"DONE": 1, "FAILED": 1}

    def test_request_drain_leaves_jobs_pending_for_resume(self):
        svc = ClusterService(ServeConfig(threads=1), processes=1)
        try:
            for _ in range(3):
                svc.submit(get_circuit("ghz", 4))
            svc.request_drain()
            report = svc.drain()
        finally:
            svc.close()
        # Graceful drain before any dispatch: nothing executed, nothing
        # lost -- the jobs are still PENDING (journaled as submitted).
        assert report.states == {"PENDING": 3}
        assert report.cluster["drained"] is True
        assert report.cluster["dispatched"] == 0

    def test_sweep_job_matches_single_process(self, tmp_path):
        manifest_lines = [
            {
                "qasm": "OPENQASM 2.0; include \"qelib1.inc\"; "
                        "qreg q[2]; rx(0) q[0]; rz(0) q[1];",
                "param_sets": [[0.3, 0.7], [1.1, -0.4], [0.3, 0.7]],
            }
        ]
        manifest = write_manifest(tmp_path / "sweep.jsonl", manifest_lines)
        ref_report, ref_jobs = run_single_process(manifest)
        assert ref_report.ok
        svc = ClusterService(ServeConfig(threads=1), processes=1)
        try:
            report, jobs = run_manifest(manifest, service=svc)
        finally:
            svc.close()
        assert report.ok
        (job,) = jobs
        ref = ref_jobs[job.job_id]
        assert job.result.state.shape == ref.result.state.shape
        assert np.array_equal(job.result.state, ref.result.state)


class TestFaultPaths:
    def test_retry_budget_exhaustion_fails_the_job(self):
        # Kill the worker after *every* dispatch: the job requeues once,
        # then the budget (max_retries=1) is spent and it must FAIL with
        # the structured retry-budget reason instead of looping forever.
        svc = ClusterService(
            ServeConfig(
                threads=1,
                max_retries=1,
                respawn_backoff_base=0.01,
                respawn_backoff_max=0.05,
                breaker_failures=10,
            ),
            processes=1,
        )
        dispatcher = svc.pool
        original_dispatch = dispatcher._dispatch
        kills = []

        def murderous_dispatch(slot, group, job, inflight, dispatch_counts):
            ok = original_dispatch(
                slot, group, job, inflight, dispatch_counts
            )
            if ok:
                kills.append(slot)
                os.kill(dispatcher.supervisor.pid(slot), signal.SIGKILL)
            return ok

        dispatcher._dispatch = murderous_dispatch
        try:
            job_id = svc.submit(get_circuit("ghz", 4))
            report = svc.drain()
            job = svc.poll(job_id)
        finally:
            svc.close()
        assert len(kills) == 2  # initial dispatch + one retry
        assert job.state is JobState.FAILED
        assert "spent the retry budget" in job.error
        assert report.states == {"FAILED": 1}

    def test_corrupt_result_frame_requeues_and_completes(self):
        # A result frame whose array descriptor does not decode is a
        # transient fault: the broker discards it, requeues the job, and
        # the retry produces the correct state.
        class CorruptFirstResult:
            corrupted = 0

            def worker_up(self, dispatcher, slot, conn):
                pass

            def dispatch(self, dispatcher, slot, job):
                pass

            def result(self, dispatcher, slot, msg, payload):
                if msg.get("state") == "DONE" and not self.corrupted:
                    self.corrupted = 1
                    msg = dict(msg)
                    msg["array"] = dict(msg.get("array") or {})
                    msg["array"]["dtype"] = "bogus"
                return msg, payload

        svc = ClusterService(ServeConfig(threads=1), processes=1)
        svc.pool.chaos = CorruptFirstResult()
        try:
            job_id = svc.submit(get_circuit("ghz", 4), shots=10)
            report = svc.drain()
            job = svc.poll(job_id)
        finally:
            svc.close()
        assert svc.pool.chaos.corrupted == 1
        assert report.states == {"DONE": 1}
        assert report.cluster["requeues"] >= 1
        ref = get_circuit("ghz", 4)
        from repro.core import FlatDDSimulator

        expected = FlatDDSimulator(threads=1).run(ref).state
        assert np.array_equal(job.result.state, expected)

    def test_crashloop_trips_breaker_quarantine_and_brownout(self):
        # The acceptance scenario: the same slot dies on every dispatch.
        # Deaths 1 and 2 respawn (with backoff); death 3 trips the
        # breaker, the slot is quarantined, its capacity is subtracted,
        # and -- with every slot now unhealthy -- admission rejects new
        # work with the structured "brownout" reason.
        from repro.common.errors import AdmissionError

        svc = ClusterService(
            ServeConfig(
                threads=1,
                max_retries=10,
                respawn_backoff_base=0.01,
                respawn_backoff_max=0.05,
                breaker_failures=3,
                brownout_min_alive_fraction=0.5,
            ),
            processes=1,
        )
        dispatcher = svc.pool
        original_dispatch = dispatcher._dispatch

        def murderous_dispatch(slot, group, job, inflight, dispatch_counts):
            ok = original_dispatch(
                slot, group, job, inflight, dispatch_counts
            )
            if ok:
                os.kill(dispatcher.supervisor.pid(slot), signal.SIGKILL)
            return ok

        dispatcher._dispatch = murderous_dispatch
        try:
            job_id = svc.submit(get_circuit("ghz", 4))
            report = svc.drain()
            job = svc.poll(job_id)
            # Bounded respawns: exactly breaker_failures - 1 before the
            # quarantine verdict cancels further respawns.
            assert report.cluster["respawn_counts"] == {0: 2}
            assert report.cluster["quarantined"] == [0]
            assert report.cluster["healthy_capacity"] == 0
            assert job.state is JobState.FAILED
            # The whole (one-slot) fleet is quarantined: admission now
            # sheds load with a reason instead of queueing the doomed.
            assert dispatcher.brownout_reason() == "brownout"
            with pytest.raises(AdmissionError) as excinfo:
                svc.submit(get_circuit("ghz", 4))
            assert excinfo.value.reason == "brownout"
            assert report.cluster["brownout_rejections"] >= 1 or (
                dispatcher.brownout_rejections >= 1
            )
        finally:
            svc.close()


class TestFleetKillAndResume:
    def test_sigkilled_fleet_finishes_on_resume(self, tmp_path):
        """SIGKILL broker+workers mid-batch; --resume completes the batch
        with journaled DONE jobs served from cache (zero re-execution)."""
        manifest = write_manifest(
            tmp_path / "m.jsonl",
            [
                {"family": "ghz", "qubits": 5, "shots": 10},
                {"family": "qft", "qubits": 5},
                {"family": "wstate", "qubits": 5},
                {"family": "ghz", "qubits": 6},
                {"family": "qft", "qubits": 6},
                {"family": "wstate", "qubits": 6},
            ],
        )
        journal = str(tmp_path / "wal.jsonl")
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", manifest,
                "--processes", "2", "--journal", journal, "--threads", "1",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,  # killpg must not hit pytest
        )
        try:
            # Wait until at least one DONE record is journaled anywhere
            # (broker file or a worker segment), then kill the session.
            deadline = time.time() + 120
            import glob as glob_mod

            def journaled_done():
                for path in [journal] + glob_mod.glob(journal + ".w*"):
                    try:
                        with open(path, encoding="utf-8") as fh:
                            if '"to":"DONE"' in fh.read():
                                return True
                    except OSError:
                        pass
                return False

            while time.time() < deadline:
                if proc.poll() is not None or journaled_done():
                    break
                time.sleep(0.05)
            if proc.poll() is None:
                assert journaled_done(), "no DONE journaled before timeout"
                os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                os.killpg(proc.pid, signal.SIGKILL)
        out = subprocess.run(
            [
                sys.executable, "-m", "repro", "serve", manifest,
                "--processes", "2", "--journal", journal, "--resume",
                "--threads", "1", "--json",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert out.returncode == 0, out.stderr
        report = json.loads(out.stdout)
        assert report["states"] == {"DONE": 6}
        recovery = report["recovery"]
        assert recovery["cache_seeded"] >= 1
        # Zero re-execution: every journaled-DONE job completed from the
        # seeded cache, so dispatches cover at most the unfinished rest.
        assert (
            report["cluster"]["dispatched"]
            <= 6 - recovery["cache_seeded"]
        )
