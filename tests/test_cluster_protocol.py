"""Wire protocol tests: framing, structured errors, and serialization.

The invariants under test are the ones the fleet's robustness rests on:
a reader can never hang or silently desynchronize on malformed input
(every failure is a :class:`ProtocolError` with a ``kind``), and every
job/result/circuit survives the wire bit-for-bit where it matters
(fingerprints, cache keys, state arrays).
"""

import io
import json
import math

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.circuits.circuit import Circuit
from repro.cluster.protocol import (
    MAGIC,
    PREFIX_BYTES,
    pack_frame,
    read_frame,
    unpack_frame,
)
from repro.common.config import FlatDDConfig
from repro.common.errors import CircuitError, ProtocolError
from repro.common.wire import (
    array_from_bytes,
    array_to_bytes,
    b64_decode_array,
    b64_encode_array,
    json_safe,
)
from repro.serve.jobs import Job, JobResult

pytestmark = pytest.mark.serve


def read_from(buffer: bytes, **caps):
    return read_frame(io.BytesIO(buffer).read, **caps)


class TestFraming:
    def test_round_trip_with_payload(self):
        payload = bytes(range(256))
        frame = pack_frame({"type": "job", "n": 3}, payload)
        header, got = unpack_frame(frame)
        assert header == {"type": "job", "n": 3}
        assert got == payload

    def test_round_trip_empty_payload(self):
        header, payload = unpack_frame(pack_frame({"type": "heartbeat"}))
        assert header["type"] == "heartbeat"
        assert payload == b""

    def test_clean_eof_returns_none(self):
        assert read_from(b"") is None

    def test_truncated_prefix_raises(self):
        frame = pack_frame({"type": "job"})
        with pytest.raises(ProtocolError) as exc:
            read_from(frame[: PREFIX_BYTES - 2])
        assert exc.value.kind == "truncated"

    def test_truncated_body_raises(self):
        frame = pack_frame({"type": "job"}, b"payload")
        for cut in (PREFIX_BYTES + 1, len(frame) - 1):
            with pytest.raises(ProtocolError) as exc:
                read_from(frame[:cut])
            assert exc.value.kind == "truncated"

    def test_bad_magic_raises(self):
        frame = bytearray(pack_frame({"type": "job"}))
        frame[:4] = b"XXXX"
        with pytest.raises(ProtocolError) as exc:
            read_from(bytes(frame))
        assert exc.value.kind == "bad_magic"
        assert MAGIC not in bytes(frame[:4])

    def test_oversized_declared_header_rejected_before_allocation(self):
        frame = pack_frame({"type": "job"})
        with pytest.raises(ProtocolError) as exc:
            read_from(frame, max_header_bytes=4)
        assert exc.value.kind == "oversized_header"

    def test_oversized_declared_payload_rejected_before_allocation(self):
        frame = pack_frame({"type": "job"}, b"x" * 64)
        with pytest.raises(ProtocolError) as exc:
            read_from(frame, max_payload_bytes=16)
        assert exc.value.kind == "oversized_payload"

    def test_sender_rejects_oversized_payload(self):
        with pytest.raises(ProtocolError) as exc:
            pack_frame({"type": "result"}, b"x" * 32, max_payload_bytes=16)
        assert exc.value.kind == "oversized_payload"

    def test_malformed_json_header_raises(self):
        good = pack_frame({"type": "jo"})
        # Same declared length, undecodable header bytes.
        bad = good[:PREFIX_BYTES] + b"{nope!!!!!!!!" + good[PREFIX_BYTES + 13:]
        with pytest.raises(ProtocolError) as exc:
            read_from(bad)
        assert exc.value.kind == "malformed_header"

    def test_header_without_type_rejected_both_ways(self):
        with pytest.raises(ProtocolError):
            pack_frame({"kind": "job"})
        blob = json.dumps({"kind": "job"}).encode()
        import struct

        frame = struct.pack("!4sII", MAGIC, len(blob), 0) + blob
        with pytest.raises(ProtocolError) as exc:
            read_from(frame)
        assert exc.value.kind == "malformed_header"

    def test_trailing_bytes_rejected_by_unpack(self):
        with pytest.raises(ProtocolError):
            unpack_frame(pack_frame({"type": "job"}) + b"junk")

    def test_back_to_back_frames_stream(self):
        stream = io.BytesIO(
            pack_frame({"type": "a"}, b"1") + pack_frame({"type": "b"}, b"2")
        )
        assert read_frame(stream.read)[0]["type"] == "a"
        assert read_frame(stream.read)[1] == b"2"
        assert read_frame(stream.read) is None


class TestArrayWire:
    def test_round_trip_1d_complex(self):
        arr = np.arange(8, dtype=np.complex128) * (1 + 2j)
        meta, payload = array_to_bytes(arr)
        out = array_from_bytes(meta, payload)
        assert np.array_equal(out, arr)
        assert out.dtype == arr.dtype

    def test_round_trip_2d_sweep_stack(self):
        arr = np.random.default_rng(0).random((3, 16)).astype(np.complex128)
        meta, payload = array_to_bytes(arr)
        assert np.array_equal(array_from_bytes(meta, payload), arr)

    def test_byte_count_mismatch_raises(self):
        meta, payload = array_to_bytes(np.zeros(4, dtype=np.complex128))
        with pytest.raises(ProtocolError) as exc:
            array_from_bytes(meta, payload[:-1])
        assert exc.value.kind == "array_mismatch"

    def test_b64_round_trip(self):
        arr = np.random.default_rng(1).random(8) + 0.5j
        assert np.array_equal(b64_decode_array(b64_encode_array(arr)), arr)

    def test_decoded_array_owns_its_memory(self):
        meta, payload = array_to_bytes(np.ones(4, dtype=np.complex128))
        out = array_from_bytes(meta, payload)
        out[0] = 9  # must not raise: not a read-only frombuffer view


class TestJsonSafe:
    def test_numpy_scalars_and_arrays(self):
        data = {
            "i": np.int64(3),
            "f": np.float64(0.5),
            "b": np.bool_(True),
            "arr": np.array([1.0, 2.0]),
            "z": 1 + 2j,
        }
        out = json_safe(data)
        json.dumps(out)  # must be serializable
        assert out["i"] == 3 and isinstance(out["i"], int)
        assert out["arr"] == [1.0, 2.0]
        assert out["z"] == [1.0, 2.0]

    def test_nested_containers_and_nonstring_keys(self):
        out = json_safe({1: {"x": (np.float32(2.0), b"\x00\x01")}})
        json.dumps(out)
        assert "1" in out

    def test_real_simulation_metadata_is_wire_safe(self):
        from repro.core import FlatDDSimulator

        result = FlatDDSimulator(config=FlatDDConfig(threads=1)).run(
            get_circuit("ghz", 4)
        )
        json.dumps(json_safe(result.metadata))


class TestCircuitWire:
    def test_fingerprint_survives_round_trip(self):
        c = Circuit(3, name="wired")
        c.h(0).cx(0, 1).rz(math.pi / 7, 2).ccx(0, 1, 2)
        c.add("u3", 1, params=(0.1, -0.2, 1e-9))
        rebuilt = Circuit.from_wire(
            json.loads(json.dumps(c.to_wire()))
        )
        assert rebuilt.fingerprint() == c.fingerprint()
        assert rebuilt.num_qubits == 3 and rebuilt.name == "wired"

    def test_malformed_payload_raises_circuit_error(self):
        with pytest.raises(CircuitError):
            Circuit.from_wire({"gates": []})
        with pytest.raises(CircuitError):
            Circuit.from_wire(
                {"num_qubits": 2, "gates": [["h", [0]]]}  # short row
            )
        with pytest.raises(CircuitError):
            Circuit.from_wire(
                {"num_qubits": 1, "gates": [["cx", [1], [0], []]]}  # oob
            )


class TestJobWire:
    def test_job_round_trip_preserves_cache_key(self):
        job = Job(
            get_circuit("qft", 4),
            backend="flatdd",
            config=FlatDDConfig(threads=2, k_operations=8),
            shots=50,
            sample_seed=7,
            priority=3,
            deadline_seconds=12.5,
            max_retries=1,
            job_id="j42",
        )
        job.seq = 9
        back = Job.from_wire(json.loads(json.dumps(job.to_wire())))
        assert back.cache_key() == job.cache_key()
        assert back.job_id == "j42" and back.seq == 9
        assert back.config == job.config
        assert back.shots == 50 and back.sample_seed == 7
        assert back.deadline_seconds == 12.5 and back.max_retries == 1

    def test_sweep_job_round_trip(self):
        circ = Circuit(2).rx(0.0, 0).rz(0.0, 1)
        job = Job(
            circ,
            param_sets=[(0.1, 0.2), (math.pi, -1.0)],
            job_id="sweep1",
        )
        back = Job.from_wire(json.loads(json.dumps(job.to_wire())))
        assert back.param_sets == [(0.1, 0.2), (math.pi, -1.0)]
        assert back.cache_key() == job.cache_key()

    def test_result_round_trip_embedded_state(self):
        state = np.zeros(4, dtype=np.complex128)
        state[0] = 1 / np.sqrt(2)
        state[3] = 1j / np.sqrt(2)
        result = JobResult(
            job_id="r1",
            backend="flatdd",
            state=state,
            runtime_seconds=0.25,
            cache_hit=True,
            attempts=2,
            counts={"00": 5, "11": 5},
            metadata={"obs": {"counters": {"x": np.int64(1)}}},
        )
        back = JobResult.from_wire(
            json.loads(json.dumps(result.to_wire()))
        )
        assert np.array_equal(back.state, state)
        assert back.counts == {"00": 5, "11": 5}
        assert back.cache_hit and back.attempts == 2
        assert back.metadata["obs"]["counters"]["x"] == 1

    def test_result_round_trip_binary_state_payload(self):
        state = np.random.default_rng(2).random(8).astype(np.complex128)
        result = JobResult(
            job_id="r2", backend="ddsim", state=state, runtime_seconds=0.1
        )
        wire = result.to_wire(include_state=False)
        assert "state" not in wire
        meta, payload = array_to_bytes(state)
        back = JobResult.from_wire(wire, state=array_from_bytes(meta, payload))
        assert np.array_equal(back.state, state)


class TestIoDeadlines:
    """Transport send/recv deadlines: a stalled peer raises a structured
    ProtocolError("timeout") instead of blocking forever (the regression
    here was an unbounded ``settimeout(None)`` socket)."""

    def _stalled_pair(self, io_timeout):
        from repro.cluster.transport import Listener, connect

        listener = Listener(io_timeout=io_timeout)
        client = connect(
            listener.host, listener.port, io_timeout=io_timeout
        )
        server = listener.accept(timeout=5.0)
        assert server is not None
        return listener, client, server

    def test_recv_deadline_raises_structured_timeout(self):
        listener, client, server = self._stalled_pair(io_timeout=0.2)
        try:
            with pytest.raises(ProtocolError) as excinfo:
                server.recv()  # the client never sends a frame
            assert excinfo.value.kind == "timeout"
        finally:
            client.close()
            server.close()
            listener.close()

    def test_send_deadline_raises_when_peer_stops_draining(self):
        listener, client, server = self._stalled_pair(io_timeout=0.25)
        try:
            # The server never reads: once loopback buffers fill, sendall
            # stalls and the deadline must surface as a ProtocolError.
            payload = b"x" * (1 << 20)
            with pytest.raises(ProtocolError) as excinfo:
                for _ in range(64):
                    client.send({"type": "blob"}, payload)
            assert excinfo.value.kind == "timeout"
            assert "not draining" in str(excinfo.value)
        finally:
            client.close()
            server.close()
            listener.close()

    def test_live_traffic_is_unaffected_by_the_deadline(self):
        listener, client, server = self._stalled_pair(io_timeout=0.5)
        try:
            client.send({"type": "ping", "n": 1})
            header, payload = server.recv()
            assert header["type"] == "ping" and payload == b""
        finally:
            client.close()
            server.close()
            listener.close()
