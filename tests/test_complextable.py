"""Unit tests for the canonical complex table (DD weight interning)."""

import math

from repro.dd.complextable import ComplexTable


class TestLookup:
    def test_near_zero_collapses_to_exact_zero(self):
        t = ComplexTable()
        assert t.lookup(1e-14 + 1e-13j) == 0j
        assert t.lookup(0j) == 0j
        assert t.lookup(-0.0 - 0.0j) == 0j

    def test_identical_values_share_representative(self):
        t = ComplexTable()
        a = t.lookup(0.3 + 0.4j)
        b = t.lookup(0.3 + 0.4j)
        assert a is b

    def test_values_within_tolerance_collapse(self):
        t = ComplexTable()
        a = t.lookup(1 / math.sqrt(2))
        b = t.lookup(1 / math.sqrt(2) + 1e-13)
        assert a == b

    def test_distinct_values_stay_distinct(self):
        t = ComplexTable()
        a = t.lookup(0.5)
        b = t.lookup(0.5 + 1e-6)
        assert a != b

    def test_seeded_constants_are_canonical(self):
        t = ComplexTable()
        assert t.lookup(1.0 + 0j) == 1.0
        assert t.lookup(-1.0 + 0j) == -1.0
        assert t.lookup(1j) == 1j

    def test_signed_zero_buckets_merge(self):
        t = ComplexTable()
        assert t.lookup(complex(-0.0, 5e-11)) == t.lookup(complex(0.0, 0.0))


class TestStatistics:
    def test_entry_count_grows_only_on_new_values(self):
        t = ComplexTable()
        base = t.entry_count
        t.lookup(0.123 + 0.456j)
        assert t.entry_count == base + 1
        t.lookup(0.123 + 0.456j)
        assert t.entry_count == base + 1

    def test_hits_and_misses_tracked(self):
        t = ComplexTable()
        t.lookup(0.77)
        misses = t.misses
        t.lookup(0.77)
        assert t.misses == misses
        assert t.hits >= 1

    def test_len_matches_entry_count(self):
        t = ComplexTable()
        t.lookup(2.5 + 0.5j)
        assert len(t) == t.entry_count


class TestMarkRewind:
    def test_rewind_drops_buckets_added_since_mark(self):
        t = ComplexTable()
        a = t.lookup(0.1234 + 0.5j)
        mark = t.mark()
        hits, misses = t.hits, t.misses
        t.lookup(0.777 - 0.2j)
        t.lookup(0.778 - 0.2j)
        t.rewind(mark)
        assert t.hits == hits and t.misses == misses
        # The pre-mark representative is untouched ...
        assert t.lookup(0.1234 + 0.5j) is a
        # ... and a post-mark value is re-interned as if never seen.
        entries = t.entry_count
        t.lookup(0.777 - 0.2j)
        assert t.entry_count == entries + 1
