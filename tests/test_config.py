"""Tests for configuration objects and the error hierarchy."""

import pytest

from repro.common.config import (
    AMPLITUDE_BYTES,
    CTABLE_ENTRY_BYTES,
    DEFAULT_BETA,
    DEFAULT_EPSILON,
    MNODE_BYTES,
    SIMD_WIDTH,
    TOLERANCE,
    VNODE_BYTES,
    FlatDDConfig,
)
from repro.common.errors import (
    CircuitError,
    DDError,
    ParallelError,
    QasmError,
    ReproError,
    SimulationError,
)


class TestFlatDDConfig:
    def test_defaults_match_paper(self):
        cfg = FlatDDConfig()
        assert cfg.beta == DEFAULT_BETA == 0.9
        assert cfg.epsilon == DEFAULT_EPSILON == 2.0
        assert cfg.simd_width == SIMD_WIDTH == 2
        assert cfg.cache_policy == "auto"
        assert cfg.fusion == "none"

    def test_frozen(self):
        cfg = FlatDDConfig()
        with pytest.raises(AttributeError):
            cfg.threads = 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"beta": -0.1}, {"beta": 1.0}, {"epsilon": 0.0},
            {"cache_policy": "sometimes"}, {"fusion": "maybe"},
            {"k_operations": 1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FlatDDConfig(**kwargs)

    def test_valid_customization(self):
        cfg = FlatDDConfig(
            beta=0.5, epsilon=3.0, threads=8, fusion="cost",
            cache_policy="always", k_operations=6,
        )
        assert cfg.threads == 8
        assert cfg.k_operations == 6


class TestMemoryConstants:
    def test_struct_sizes_ordered(self):
        # A matrix node (4 edges) must be priced above a vector node (2).
        assert MNODE_BYTES > VNODE_BYTES > 0
        assert AMPLITUDE_BYTES == 16
        assert CTABLE_ENTRY_BYTES > 0

    def test_tolerance_sane(self):
        assert 0 < TOLERANCE < 1e-6


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc", [CircuitError, DDError, ParallelError, QasmError,
                SimulationError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_qasm_error_line_prefix(self):
        err = QasmError("bad token", line=17)
        assert err.line == 17
        assert "line 17" in str(err)

    def test_qasm_error_without_line(self):
        err = QasmError("bad token")
        assert err.line is None
        assert str(err) == "bad token"
