"""Unit tests for parallel DD-to-array conversion (Section 3.1.2)."""

import math

import numpy as np
import pytest

from repro.core.conversion import (
    convert_parallel,
    convert_sequential,
    plan_conversion,
)
from repro.dd import DDPackage, vector_from_array
from repro.parallel.pool import TaskRunner

from tests.conftest import random_state


def _figure_4a_state(pkg: DDPackage) -> np.ndarray:
    """A state with zero edges, like Figure 4a's example DD."""
    arr = np.zeros(16, dtype=complex)
    arr[[0, 2, 5, 7]] = [0.5, 0.5, 0.5, 0.5]
    return arr


class TestCorrectness:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    @pytest.mark.parametrize("lb", [True, False])
    @pytest.mark.parametrize("sm", [True, False])
    def test_matches_sequential_on_random_state(self, threads, lb, sm):
        n = 6
        pkg = DDPackage(n)
        arr = random_state(n, seed=threads)
        e = vector_from_array(pkg, arr)
        out, report = convert_parallel(
            pkg, e, threads, load_balance=lb, scalar_mult=sm
        )
        np.testing.assert_allclose(out, arr, atol=1e-10)
        assert report.threads == threads

    def test_sparse_state_with_zero_edges(self):
        pkg = DDPackage(4)
        arr = _figure_4a_state(pkg)
        e = vector_from_array(pkg, arr)
        for threads in (1, 2, 4):
            out, _ = convert_parallel(pkg, e, threads)
            np.testing.assert_allclose(out, arr, atol=1e-12)

    def test_scalar_multiple_state(self):
        # Figure 4b: quarters of the array are scalar multiples.
        pkg = DDPackage(4)
        base = random_state(2, seed=1)
        arr = np.concatenate([base, 2 * base, 3 * base, -1j * base])
        arr /= np.linalg.norm(arr)
        e = vector_from_array(pkg, arr)
        out, report = convert_parallel(pkg, e, 4, dense_level=-1)
        np.testing.assert_allclose(out, arr, atol=1e-10)

    def test_zero_state_converts_to_zeros(self):
        pkg = DDPackage(3)
        e = vector_from_array(pkg, np.zeros(8))
        out, _ = convert_parallel(pkg, e, 2)
        np.testing.assert_array_equal(out, np.zeros(8))

    def test_with_thread_pool_runner(self):
        n = 5
        pkg = DDPackage(n)
        arr = random_state(n, seed=9)
        e = vector_from_array(pkg, arr)
        with TaskRunner(4, use_pool=True) as runner:
            out, _ = convert_parallel(pkg, e, 4, runner=runner)
        np.testing.assert_allclose(out, arr, atol=1e-10)

    def test_sequential_baseline_agrees(self):
        pkg = DDPackage(5)
        arr = random_state(5, seed=2)
        e = vector_from_array(pkg, arr)
        out, seconds = convert_sequential(pkg, e)
        np.testing.assert_allclose(out, arr, atol=1e-10)
        assert seconds >= 0


class TestPlanStructure:
    def test_threads_divide_at_junctions(self):
        n = 4
        pkg = DDPackage(n)
        arr = random_state(n, seed=3)  # dense: junctions everywhere
        e = vector_from_array(pkg, arr)
        plan = plan_conversion(pkg, e, 4)
        busy = [u for u, t in enumerate(plan.tasks) if t]
        assert len(busy) == 4  # every thread got work

    def test_load_balancing_keeps_threads_busy(self):
        pkg = DDPackage(4)
        arr = np.zeros(16, dtype=complex)
        arr[:4] = random_state(2, seed=4)  # top levels have zero edges
        e = vector_from_array(pkg, arr)
        balanced = plan_conversion(pkg, e, 4, load_balance=True)
        naive = plan_conversion(pkg, e, 4, load_balance=False)
        assert balanced.idle_threads == 0
        assert naive.idle_threads > 0

    def test_scalar_mult_records_fills(self):
        pkg = DDPackage(4)
        base = random_state(3, seed=5)
        arr = np.concatenate([base, 0.5 * base])
        arr /= np.linalg.norm(arr)
        e = vector_from_array(pkg, arr)
        plan = plan_conversion(pkg, e, 4, scalar_mult=True)
        assert plan.scalar_fills
        top = plan.scalar_fills[0]
        assert top.src == 0 and top.dst == 8 and top.size == 8

    def test_scalar_mult_disabled_has_no_fills(self):
        pkg = DDPackage(4)
        base = random_state(3, seed=5)
        arr = np.concatenate([base, 0.5 * base])
        e = vector_from_array(pkg, arr / np.linalg.norm(arr))
        plan = plan_conversion(pkg, e, 4, scalar_mult=False)
        assert not plan.scalar_fills

    def test_nested_scalar_fills_ordered_by_level(self):
        # [b, 2b, b, 2b, ...] nests scalar structure at two levels.
        pkg = DDPackage(4)
        b = random_state(2, seed=6)
        quarter = np.concatenate([b, 2 * b])
        arr = np.concatenate([quarter, 3 * quarter])
        arr /= np.linalg.norm(arr)
        e = vector_from_array(pkg, arr)
        out, report = convert_parallel(pkg, e, 2, dense_level=-1)
        np.testing.assert_allclose(out, arr, atol=1e-10)
        assert report.num_scalar_fills >= 2


class TestReport:
    def test_report_fields(self):
        pkg = DDPackage(4)
        e = vector_from_array(pkg, random_state(4, seed=7))
        _, report = convert_parallel(
            pkg, e, 2, load_balance=False, scalar_mult=False
        )
        assert report.load_balance is False
        assert report.scalar_mult is False
        assert report.num_tasks >= 1
        assert report.seconds > 0
