"""Unit tests for the MAC-count cost model (Section 3.2.3)."""

import math

import numpy as np
import pytest

from repro.backends.gatecache import build_gate_dd
from repro.circuits import Gate
from repro.core.cost_model import CostModel, assign_cache_tasks, mac_count
from repro.dd import (
    DDPackage,
    matrix_to_dense,
    single_qubit_gate,
    mm_multiply,
)

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=complex)


def dense_mac_count(m: np.ndarray) -> int:
    """Reference: one MAC per non-zero matrix entry."""
    return int(np.count_nonzero(np.abs(m) > 1e-12))


class TestMacCount:
    def test_terminal_costs_one(self):
        pkg = DDPackage(1)
        assert mac_count(pkg, pkg.one_edge()) == 1

    def test_zero_edge_costs_zero(self):
        pkg = DDPackage(2)
        assert mac_count(pkg, pkg.zero_edge()) == 0

    def test_identity_matches_nonzeros(self):
        pkg = DDPackage(4)
        m = pkg.identity_edge(3)
        assert mac_count(pkg, m) == 16  # one nonzero per row

    @pytest.mark.parametrize("target", [0, 1, 3])
    def test_single_qubit_gates_match_nonzeros(self, target):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, target)
        assert mac_count(pkg, m) == dense_mac_count(matrix_to_dense(pkg, m))

    def test_controlled_gate_matches_nonzeros(self):
        pkg = DDPackage(4)
        m = build_gate_dd(pkg, Gate("ccx", (0,), (2, 3)))
        assert mac_count(pkg, m) == dense_mac_count(matrix_to_dense(pkg, m))

    def test_figure_8_example_structure(self):
        # A two-level DD where every node doubles its child count, like the
        # paper's Figure 8 walk: H (x) H has 16 nonzero entries -> 16 MACs.
        pkg = DDPackage(2)
        hh = mm_multiply(
            pkg,
            single_qubit_gate(pkg, H, 0),
            single_qubit_gate(pkg, H, 1),
        )
        assert mac_count(pkg, hh) == 16

    def test_fused_gate_cost_grows_with_density(self):
        pkg = DDPackage(4)
        h0 = single_qubit_gate(pkg, H, 0)
        h1 = single_qubit_gate(pkg, H, 1)
        fused = mm_multiply(pkg, h0, h1)
        assert mac_count(pkg, fused) > mac_count(pkg, h0)

    def test_memoized_across_shared_nodes(self):
        pkg = DDPackage(6)
        m = single_qubit_gate(pkg, H, 3)
        mac_count(pkg, m)
        assert pkg.mac_counts  # table populated


class TestEquationFive:
    def test_cost_divides_by_threads(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 2)
        k1 = mac_count(pkg, m)
        for t in (1, 2, 4):
            cost = CostModel(t).evaluate(pkg, m)
            assert cost.cost_nocache == pytest.approx(k1 / t)


class TestEquationSix:
    def test_cache_cost_components(self):
        n, t, d = 5, 2, 2
        pkg = DDPackage(n)
        m = single_qubit_gate(pkg, H, n - 1)
        assignment = assign_cache_tasks(pkg, m, t)
        cost = CostModel(t, d).evaluate(pkg, m)
        k2 = assignment.k2_macs(pkg)
        h = assignment.cache_hits
        b = assignment.num_buffers
        expected = k2 / t + ((1 << n) / (d * t)) * (h / t + b)
        assert cost.cost_cache == pytest.approx(expected)

    def test_cache_hits_counted_per_thread(self):
        # H on top qubit at t=2: each thread sees the same identity node
        # twice -> one hit per thread.
        pkg = DDPackage(5)
        m = single_qubit_gate(pkg, H, 4)
        assignment = assign_cache_tasks(pkg, m, 2)
        assert assignment.cache_hits == 2

    def test_k2_excludes_repeats(self):
        pkg = DDPackage(5)
        m = single_qubit_gate(pkg, H, 4)
        assignment = assign_cache_tasks(pkg, m, 2)
        k1 = mac_count(pkg, m)
        assert assignment.k2_macs(pkg) < k1

    def test_plain_hadamard_does_not_justify_caching(self):
        # For a lone H the MACs saved by caching (half of K1) are smaller
        # than the buffer-summing overhead of Equation 6 -- exactly the
        # kind of gate the paper's model keeps on the uncached path.
        n = 10
        pkg = DDPackage(n)
        m = single_qubit_gate(pkg, H, n - 1)
        cost = CostModel(2).evaluate(pkg, m)
        assert cost.cost_cache > cost.cost_nocache

    def test_caching_pays_off_for_dense_fused_gates(self):
        # Fused multi-H gates (the DMAV-phase workload after fusion) have
        # dense top blocks whose border nodes repeat heavily: caching wins.
        n = 10
        pkg = DDPackage(n)
        m = pkg.identity_edge(n - 1)
        for q in (n - 1, n - 2, n - 3):
            m = mm_multiply(pkg, single_qubit_gate(pkg, H, q), m)
        cost = CostModel(4).evaluate(pkg, m)
        assert cost.cache_hits > 0
        assert cost.cost_cache < cost.cost_nocache
        assert cost.use_cache

    def test_caching_rejected_when_no_sharing(self):
        # CX with control at the border level has distinct border nodes
        # per column block; cache hits = 0 so buffers make C2 > C1.
        n = 6
        pkg = DDPackage(n)
        m = build_gate_dd(pkg, Gate("rz", (0,), params=(0.3,)))
        cost = CostModel(2).evaluate(pkg, m)
        # rz is diagonal: every border task is unique per thread.
        assert cost.cache_hits == 0
        assert not cost.use_cache

    def test_min_cost_selected(self):
        pkg = DDPackage(6)
        m = single_qubit_gate(pkg, H, 5)
        cost = CostModel(2).evaluate(pkg, m)
        assert cost.cost == min(cost.cost_nocache, cost.cost_cache)


class TestExecutionConsistency:
    def test_modeled_hits_match_executed_hits(self):
        from repro.core.dmav import dmav_cached
        from tests.conftest import random_state

        n = 6
        pkg = DDPackage(n)
        v = random_state(n, seed=0)
        for gate in (
            Gate("h", (n - 1,)),
            Gate("h", (0,)),
            Gate("cx", (0,), (n - 1,)),
            Gate("swap", (0, n - 1)),
        ):
            m = build_gate_dd(pkg, gate)
            for t in (1, 2, 4):
                assignment = assign_cache_tasks(pkg, m, t)
                _, stats = dmav_cached(pkg, m, v, t, assignment=assignment)
                assert stats.cache_hits == assignment.cache_hits
                assert stats.buffers == assignment.num_buffers


class TestValidation:
    def test_bad_thread_count(self):
        with pytest.raises(ValueError):
            CostModel(0)

    def test_bad_simd_width(self):
        with pytest.raises(ValueError):
            CostModel(2, 0)
