"""Unit tests for DD structural analysis (identity / dense / kron caches)."""

import math

import numpy as np
import pytest

from repro.dd import DDPackage, single_qubit_gate, two_qubit_gate, controlled_gate
from repro.dd.analysis import (
    dense_matrix_block,
    dense_vector_block,
    is_identity,
    kron_collapse,
    vector_kron_collapse,
)
from repro.dd.matrix import matrix_to_dense
from repro.dd.node import TERMINAL
from repro.dd.vector import vector_from_array

from tests.conftest import random_state

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=complex)
RZ = np.diag([np.exp(-0.2j), np.exp(0.2j)])


class TestIsIdentity:
    def test_identity_chain_detected(self):
        pkg = DDPackage(4)
        assert is_identity(pkg, pkg.identity_edge(3).n)

    def test_terminal_is_identity(self):
        pkg = DDPackage(2)
        assert is_identity(pkg, TERMINAL)

    def test_gate_not_identity(self):
        pkg = DDPackage(3)
        e = single_qubit_gate(pkg, H, 1)
        assert not is_identity(pkg, e.n)

    def test_result_memoized(self):
        pkg = DDPackage(4)
        node = pkg.identity_edge(3).n
        is_identity(pkg, node)
        assert pkg.identity_flags[id(node)] is True


class TestDenseBlocks:
    def test_matrix_block_matches_to_dense(self):
        pkg = DDPackage(3)
        e = single_qubit_gate(pkg, H, 1)
        block = dense_matrix_block(pkg, e.n)
        np.testing.assert_allclose(
            e.w * block, matrix_to_dense(pkg, e), atol=1e-12
        )

    def test_matrix_block_cached_and_readonly(self):
        pkg = DDPackage(2)
        e = single_qubit_gate(pkg, X, 0)
        a = dense_matrix_block(pkg, e.n)
        b = dense_matrix_block(pkg, e.n)
        assert a is b
        with pytest.raises(ValueError):
            a[0, 0] = 5

    def test_vector_block_matches_export(self):
        pkg = DDPackage(3)
        arr = random_state(3, 4)
        e = vector_from_array(pkg, arr)
        block = dense_vector_block(pkg, e.n)
        np.testing.assert_allclose(e.w * block, arr, atol=1e-10)


class TestKronCollapse:
    def test_single_qubit_gate_on_low_qubit_collapses(self):
        # H on qubit 0 of n: levels n-1..1 are pass-through; the chain
        # reaches the target node at level 0 <= dense_level.
        pkg = DDPackage(6)
        e = single_qubit_gate(pkg, H, 0)
        got = kron_collapse(pkg, e.n, dense_level=2)
        assert got is not None
        d, base = got
        # The chain stops at the dense bottom-out level (2), which still
        # contains the target node; d covers levels 5..3.
        assert base.level == 2
        assert d.size == 8
        np.testing.assert_allclose(d, np.ones(8))
        reconstructed = e.w * np.kron(
            np.diag(d), dense_matrix_block(pkg, base)
        )
        np.testing.assert_allclose(
            reconstructed, matrix_to_dense(pkg, e), atol=1e-12
        )

    def test_diagonal_gate_collapses_to_terminal(self):
        pkg = DDPackage(5)
        e = single_qubit_gate(pkg, RZ, 3)
        got = kron_collapse(pkg, e.n, dense_level=-1)
        assert got is not None
        d, base = got
        assert base is TERMINAL
        # Reconstructed diagonal must match the dense gate's diagonal.
        dense = matrix_to_dense(pkg, e)
        np.testing.assert_allclose(e.w * d, np.diag(dense), atol=1e-12)

    def test_high_target_does_not_collapse(self):
        # H on the top qubit branches immediately: no pass-through chain.
        pkg = DDPackage(6)
        e = single_qubit_gate(pkg, H, 5)
        assert kron_collapse(pkg, e.n, dense_level=2) is None

    def test_cx_does_not_collapse_at_root(self):
        pkg = DDPackage(6)
        e = controlled_gate(pkg, X, (0,), (5,))
        assert kron_collapse(pkg, e.n, dense_level=2) is None

    def test_result_memoized_including_negative(self):
        pkg = DDPackage(6)
        e = single_qubit_gate(pkg, H, 5)
        kron_collapse(pkg, e.n, dense_level=2)
        assert id(e.n) in pkg.kron_cache
        assert pkg.kron_cache[id(e.n)] is None


class TestVectorKronCollapse:
    def test_product_state_collapses(self):
        # |0> (x) |psi>: top levels have zero right children.
        pkg = DDPackage(5)
        low = random_state(3, 2)
        arr = np.zeros(32, dtype=complex)
        arr[:8] = low
        e = vector_from_array(pkg, arr)
        got = vector_kron_collapse(pkg, e.n, dense_level=2)
        assert got is not None
        d, base = got
        reconstructed = e.w * np.kron(d, dense_vector_block(pkg, base))
        np.testing.assert_allclose(reconstructed, arr, atol=1e-10)

    def test_uniform_superposition_collapses(self):
        pkg = DDPackage(6)
        arr = np.full(64, 1 / 8.0)
        e = vector_from_array(pkg, arr)
        got = vector_kron_collapse(pkg, e.n, dense_level=0)
        assert got is not None
        d, base = got
        np.testing.assert_allclose(
            e.w * np.kron(d, dense_vector_block(pkg, base)), arr, atol=1e-10
        )

    def test_entangled_state_does_not_collapse(self):
        # GHZ: top children differ (|0..0> vs |1..1>): no collapse.
        pkg = DDPackage(4)
        arr = np.zeros(16)
        arr[0] = arr[15] = 1 / math.sqrt(2)
        e = vector_from_array(pkg, arr)
        assert vector_kron_collapse(pkg, e.n, dense_level=1) is None
