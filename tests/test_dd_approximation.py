"""Unit tests for DD inner products and state approximation (ref [97])."""

import math

import numpy as np
import pytest

from repro.common.errors import DDError
from repro.dd import (
    DDPackage,
    inner_product,
    keep_largest_contributions,
    node_count,
    norm,
    prune_small_contributions,
    vector_from_array,
    vector_to_array,
)

from tests.conftest import random_state


class TestInnerProduct:
    def test_matches_numpy(self):
        n = 5
        pkg = DDPackage(n)
        a = random_state(n, seed=1)
        b = random_state(n, seed=2)
        ea, eb = vector_from_array(pkg, a), vector_from_array(pkg, b)
        assert inner_product(pkg, ea, eb) == pytest.approx(
            np.vdot(a, b), abs=1e-10
        )

    def test_conjugation_side(self):
        pkg = DDPackage(2)
        a = np.array([1, 1j, 0, 0], dtype=complex) / math.sqrt(2)
        b = np.array([1, 0, 0, 0], dtype=complex)
        ea, eb = vector_from_array(pkg, a), vector_from_array(pkg, b)
        assert inner_product(pkg, ea, eb) == pytest.approx(
            np.vdot(a, b), abs=1e-12
        )

    def test_self_inner_product_is_norm_squared(self):
        pkg = DDPackage(4)
        a = random_state(4, seed=3) * 2.5
        ea = vector_from_array(pkg, a)
        assert inner_product(pkg, ea, ea) == pytest.approx(
            np.vdot(a, a), abs=1e-9
        )
        assert norm(pkg, ea) == pytest.approx(2.5, abs=1e-9)

    def test_orthogonal_states(self):
        pkg = DDPackage(3)
        a = np.zeros(8, dtype=complex)
        a[0] = 1
        b = np.zeros(8, dtype=complex)
        b[5] = 1
        assert inner_product(
            pkg, vector_from_array(pkg, a), vector_from_array(pkg, b)
        ) == pytest.approx(0.0, abs=1e-12)

    def test_zero_edge_gives_zero(self):
        pkg = DDPackage(2)
        a = vector_from_array(pkg, random_state(2, seed=0))
        assert inner_product(pkg, a, pkg.zero_edge()) == 0j


def _spiked_state(n: int, seed: int, noise: float = 0.02) -> np.ndarray:
    """A few dominant amplitudes plus a haze of tiny ones."""
    rng = np.random.default_rng(seed)
    arr = noise * (
        rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    )
    for spike in (0, 3, 7):
        arr[spike] += 1.0
    return arr / np.linalg.norm(arr)


class TestPruneSmallContributions:
    def test_fidelity_respects_budget(self):
        n = 7
        pkg = DDPackage(n)
        state = vector_from_array(pkg, _spiked_state(n, 4))
        result = prune_small_contributions(pkg, state, budget=0.05)
        assert result.fidelity >= 1.0 - 0.05 - 1e-6

    def test_size_shrinks_on_hazy_state(self):
        n = 8
        pkg = DDPackage(n)
        state = vector_from_array(pkg, _spiked_state(n, 5))
        before = node_count(state)
        result = prune_small_contributions(pkg, state, budget=0.1)
        assert result.nodes_after < before
        assert result.nodes_before == before
        assert result.size_reduction > 1.0

    def test_approximate_state_is_normalized(self):
        n = 6
        pkg = DDPackage(n)
        state = vector_from_array(pkg, _spiked_state(n, 6))
        result = prune_small_contributions(pkg, state, budget=0.08)
        arr = vector_to_array(pkg, result.state)
        assert np.linalg.norm(arr) == pytest.approx(1.0, abs=1e-9)

    def test_dominant_amplitudes_survive(self):
        n = 6
        pkg = DDPackage(n)
        arr = _spiked_state(n, 7)
        state = vector_from_array(pkg, arr)
        result = prune_small_contributions(pkg, state, budget=0.1)
        out = vector_to_array(pkg, result.state)
        for spike in (0, 3, 7):
            assert abs(out[spike]) > 0.4

    def test_tiny_budget_is_identity(self):
        pkg = DDPackage(4)
        state = vector_from_array(pkg, random_state(4, seed=8))
        result = prune_small_contributions(pkg, state, budget=1e-12)
        assert result.fidelity == pytest.approx(1.0)
        assert result.nodes_after == result.nodes_before

    def test_bad_budget_rejected(self):
        pkg = DDPackage(3)
        state = vector_from_array(pkg, random_state(3, seed=9))
        with pytest.raises(DDError):
            prune_small_contributions(pkg, state, budget=0.0)
        with pytest.raises(DDError):
            prune_small_contributions(pkg, state, budget=1.0)

    def test_zero_state_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(DDError):
            prune_small_contributions(pkg, pkg.zero_edge(), 0.1)


class TestKeepLargest:
    def test_weak_branches_removed(self):
        n = 6
        pkg = DDPackage(n)
        # Product state with one very weak branch per qubit.
        single = np.array([1.0, 0.05], dtype=complex)
        arr = np.array([1.0])
        for _ in range(n):
            arr = np.kron(single, arr)
        arr = arr / np.linalg.norm(arr)
        state = vector_from_array(pkg, arr)
        result = keep_largest_contributions(pkg, state, ratio=0.01)
        assert result.nodes_after <= result.nodes_before
        assert result.fidelity > 0.97

    def test_balanced_state_untouched(self):
        pkg = DDPackage(4)
        arr = np.full(16, 0.25)
        state = vector_from_array(pkg, arr)
        result = keep_largest_contributions(pkg, state, ratio=0.05)
        assert result.fidelity == pytest.approx(1.0)
        assert result.nodes_after == result.nodes_before

    def test_bad_ratio_rejected(self):
        pkg = DDPackage(3)
        state = vector_from_array(pkg, random_state(3, seed=10))
        with pytest.raises(DDError):
            keep_largest_contributions(pkg, state, ratio=0.9)
