"""Tests for reduced density matrices, entropy, and Schmidt/DD-width link."""

import math

import numpy as np
import pytest

from repro.backends import StatevectorSimulator
from repro.circuits import get_circuit
from repro.common.errors import DDError
from repro.dd import (
    DDPackage,
    entanglement_entropy,
    reduced_density_top,
    schmidt_rank_profile,
    vector_from_array,
)

from tests.conftest import random_state


def dense_reduced_top(arr: np.ndarray, m: int) -> np.ndarray:
    """Reference: trace out the low qubits with dense linear algebra."""
    n = arr.size.bit_length() - 1
    mat = arr.reshape(1 << m, 1 << (n - m))
    return mat @ mat.conj().T


class TestReducedDensity:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_matches_dense_partial_trace(self, m):
        n = 5
        arr = random_state(n, seed=m)
        pkg = DDPackage(n)
        state = vector_from_array(pkg, arr)
        rho = reduced_density_top(pkg, state, m)
        np.testing.assert_allclose(
            rho, dense_reduced_top(arr, m), atol=1e-9
        )

    def test_density_matrix_properties(self):
        n = 6
        pkg = DDPackage(n)
        state = vector_from_array(pkg, random_state(n, seed=4))
        rho = reduced_density_top(pkg, state, 3)
        assert np.trace(rho).real == pytest.approx(1.0, abs=1e-9)
        np.testing.assert_allclose(rho, rho.conj().T, atol=1e-10)
        assert np.linalg.eigvalsh(rho).min() > -1e-10

    def test_product_state_is_pure(self):
        n = 4
        top = random_state(2, seed=5)
        bottom = random_state(2, seed=6)
        arr = np.kron(top, bottom)
        pkg = DDPackage(n)
        rho = reduced_density_top(pkg, vector_from_array(pkg, arr), 2)
        np.testing.assert_allclose(rho, np.outer(top, top.conj()), atol=1e-9)

    def test_invalid_cut_rejected(self):
        pkg = DDPackage(3)
        state = vector_from_array(pkg, random_state(3, seed=7))
        with pytest.raises(DDError):
            reduced_density_top(pkg, state, 0)
        with pytest.raises(DDError):
            reduced_density_top(pkg, state, 3)


class TestEntropy:
    def test_product_state_zero_entropy(self):
        n = 4
        arr = np.kron(random_state(2, seed=8), random_state(2, seed=9))
        pkg = DDPackage(n)
        state = vector_from_array(pkg, arr)
        assert entanglement_entropy(pkg, state, 2) == pytest.approx(
            0.0, abs=1e-8
        )

    def test_ghz_has_one_ebit(self):
        n = 6
        arr = np.zeros(1 << n)
        arr[0] = arr[-1] = 1 / math.sqrt(2)
        pkg = DDPackage(n)
        state = vector_from_array(pkg, arr)
        for cut in (1, 2, 3):
            assert entanglement_entropy(pkg, state, cut) == pytest.approx(
                1.0, abs=1e-9
            )

    def test_bell_pairs_add_entropy(self):
        # Two Bell pairs across the cut: entropy = 2 ebits.
        bell = np.array([1, 0, 0, 1]) / math.sqrt(2)
        arr = np.kron(bell, bell)  # qubits (3,1) and (2,0) pairings differ;
        # simplest: |phi+>_{32} (x) |phi+>_{10}: cut at 2 crosses both? No:
        # kron(bell, bell) = bell on (3,2) x bell on (1,0): the cut at m=2
        # separates the pairs, entropy 0.  Build the crossing state
        # explicitly: pair (3,1) and (2,0).
        n = 4
        crossing = np.zeros(1 << n)
        for b1 in (0, 1):
            for b2 in (0, 1):
                idx = (b1 << 3) | (b2 << 2) | (b1 << 1) | b2
                crossing[idx] = 0.5
        pkg = DDPackage(n)
        state = vector_from_array(pkg, crossing)
        assert entanglement_entropy(pkg, state, 2) == pytest.approx(
            2.0, abs=1e-9
        )

    def test_random_state_near_maximal(self):
        # Haar-ish random states have near-maximal entanglement (Page).
        n = 8
        pkg = DDPackage(n)
        state = vector_from_array(pkg, random_state(n, seed=10))
        s = entanglement_entropy(pkg, state, 4)
        assert s > 2.5  # max is 4 ebits; Page value ~3.6


class TestSchmidtVsDDWidth:
    @pytest.mark.parametrize(
        "family,n,kwargs",
        [("ghz", 6, {}), ("qft", 5, {}), ("dnn", 6, {"layers": 3}),
         ("supremacy", 6, {"cycles": 6})],
    )
    def test_rank_never_exceeds_width(self, family, n, kwargs):
        c = get_circuit(family, n, **kwargs)
        arr = StatevectorSimulator().run(c).state
        pkg = DDPackage(n)
        state = vector_from_array(pkg, arr)
        for cut, rank, width in schmidt_rank_profile(pkg, state):
            assert rank <= width, (family, cut, rank, width)

    def test_irregular_state_has_high_rank_everywhere(self):
        c = get_circuit("supremacy", 8, cycles=10)
        arr = StatevectorSimulator().run(c).state
        pkg = DDPackage(8)
        state = vector_from_array(pkg, arr)
        profile = schmidt_rank_profile(pkg, state, max_cut=4)
        cut4 = profile[-1]
        assert cut4[1] == 16  # full rank at the middle cut
        assert cut4[2] >= 16

    def test_ghz_rank_two_everywhere(self):
        c = get_circuit("ghz", 7)
        arr = StatevectorSimulator().run(c).state
        pkg = DDPackage(7)
        state = vector_from_array(pkg, arr)
        for cut, rank, width in schmidt_rank_profile(pkg, state):
            assert rank == 2
            assert width == 2
