"""Unit tests for DD export (DOT) and structural statistics."""

import math

import numpy as np
import pytest

from repro.dd import (
    DDPackage,
    single_qubit_gate,
    vector_from_array,
    zero_state,
)
from repro.dd.io import dd_statistics, to_dot

from tests.conftest import random_state

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)


class TestToDot:
    def test_contains_all_nodes_and_terminal(self):
        pkg = DDPackage(3)
        e = vector_from_array(pkg, random_state(3, seed=1))
        dot = to_dot(pkg, e)
        assert dot.startswith("digraph")
        assert "terminal" in dot
        assert dot.count('label="q') >= 3  # one node label per level

    def test_zero_edge_renders(self):
        pkg = DDPackage(2)
        dot = to_dot(pkg, pkg.zero_edge())
        assert 'label="0"' in dot

    def test_matrix_edges_carry_block_labels(self):
        pkg = DDPackage(2)
        m = single_qubit_gate(pkg, H, 1)
        dot = to_dot(pkg, m)
        assert 'headlabel="00"' in dot
        assert 'headlabel="11"' in dot

    def test_unit_weights_unlabeled(self):
        pkg = DDPackage(2)
        e = zero_state(pkg)
        dot = to_dot(pkg, e)
        # |00>: all weights are 1 -> no weight labels on edges (the
        # terminal box's own label is not an edge label).
        assert ' [label="1"]' not in dot

    def test_shared_nodes_rendered_once(self):
        pkg = DDPackage(3)
        arr = np.full(8, 1 / math.sqrt(8))
        e = vector_from_array(pkg, arr)
        dot = to_dot(pkg, e)
        # Uniform state: exactly 3 DD nodes (one per level).
        assert dot.count('[label="q') == 3


class TestStatistics:
    def test_uniform_state_stats(self):
        pkg = DDPackage(4)
        e = vector_from_array(pkg, np.full(16, 0.25))
        stats = dd_statistics(pkg, e)
        assert stats.total_nodes == 4
        assert stats.max_width == 1
        assert stats.zero_edge_count == 0
        # 16 paths over 4 nodes.
        assert stats.sharing_factor == pytest.approx(4.0)

    def test_random_state_stats(self):
        n = 5
        pkg = DDPackage(n)
        e = vector_from_array(pkg, random_state(n, seed=2))
        stats = dd_statistics(pkg, e)
        assert stats.total_nodes == (1 << n) - 1
        assert stats.nodes_per_level[0] == 1 << (n - 1)
        assert not stats.is_matrix

    def test_basis_state_stats(self):
        pkg = DDPackage(6)
        e = zero_state(pkg)
        stats = dd_statistics(pkg, e)
        assert stats.total_nodes == 6
        assert stats.zero_edge_count == 6
        assert stats.sharing_factor == pytest.approx(1 / 6)

    def test_matrix_stats(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 2)
        stats = dd_statistics(pkg, m)
        assert stats.is_matrix
        assert stats.total_nodes == 4
        # Identity/pass-through nodes have 2 zero edges each; the H node 0.
        assert stats.zero_edge_count == 6

    def test_zero_edge_stats(self):
        pkg = DDPackage(3)
        stats = dd_statistics(pkg, pkg.zero_edge())
        assert stats.total_nodes == 0
        assert stats.sharing_factor == 0.0
