"""Unit tests for matrix DDs: gate construction against dense references."""

import math

import numpy as np
import pytest

from repro.common.errors import DDError
from repro.dd import (
    DDPackage,
    controlled_gate,
    matrix_entry,
    matrix_from_factors,
    matrix_node_count,
    matrix_to_dense,
    single_qubit_gate,
    two_qubit_gate,
)

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]])
Z = np.diag([1, -1]).astype(complex)
S = np.diag([1, 1j])
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def dense_1q(u, target, n):
    out = np.array([[1]], dtype=complex)
    for k in range(n - 1, -1, -1):
        out = np.kron(out, u if k == target else np.eye(2))
    return out


def dense_controlled(u, targets, controls, n):
    dim = 1 << n
    out = np.zeros((dim, dim), dtype=complex)
    tbits = list(targets)
    for col in range(dim):
        if all((col >> c) & 1 for c in controls):
            col_sub = 0
            for t in tbits:
                col_sub = (col_sub << 1) | ((col >> t) & 1)
            for row_sub in range(u.shape[0]):
                row = col
                for pos, t in enumerate(tbits):
                    bitval = (row_sub >> (len(tbits) - 1 - pos)) & 1
                    row = (row & ~(1 << t)) | (bitval << t)
                out[row, col] += u[row_sub, col_sub]
        else:
            out[col, col] += 1
    return out


class TestSingleQubitGates:
    @pytest.mark.parametrize("target", [0, 1, 2, 3])
    @pytest.mark.parametrize("u", [H, X, Y, Z, S], ids="HXYZS")
    def test_matches_kron_reference(self, u, target):
        n = 4
        pkg = DDPackage(n)
        e = single_qubit_gate(pkg, u, target)
        np.testing.assert_allclose(
            matrix_to_dense(pkg, e), dense_1q(u, target, n), atol=1e-12
        )

    def test_identity_gate_is_identity_chain(self):
        pkg = DDPackage(5)
        e = single_qubit_gate(pkg, np.eye(2), 2)
        assert e.n is pkg.identity_edge(4).n

    def test_gate_node_count_is_linear(self):
        pkg = DDPackage(8)
        e = single_qubit_gate(pkg, H, 3)
        # identity chain below (3) + H node + pass-through nodes above (4).
        assert matrix_node_count(e) == 8

    def test_bad_target_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(DDError):
            single_qubit_gate(pkg, H, 3)

    def test_bad_shape_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(DDError):
            single_qubit_gate(pkg, np.eye(4), 0)


class TestControlledGates:
    @pytest.mark.parametrize(
        "target,controls",
        [(0, (2,)), (2, (0,)), (1, (3,)), (0, (1, 2)), (3, (0, 1, 2))],
    )
    def test_controlled_x_matches_reference(self, target, controls):
        n = 4
        pkg = DDPackage(n)
        e = controlled_gate(pkg, X, (target,), controls)
        np.testing.assert_allclose(
            matrix_to_dense(pkg, e),
            dense_controlled(X, (target,), controls, n),
            atol=1e-12,
        )

    def test_controlled_phase_matches_reference(self):
        n = 3
        pkg = DDPackage(n)
        p = np.diag([1, np.exp(0.3j)])
        e = controlled_gate(pkg, p, (0,), (2,))
        np.testing.assert_allclose(
            matrix_to_dense(pkg, e),
            dense_controlled(p, (0,), (2,), n),
            atol=1e-12,
        )

    def test_controlled_swap_matches_reference(self):
        n = 3
        pkg = DDPackage(n)
        e = controlled_gate(pkg, SWAP, (2, 1), (0,))
        np.testing.assert_allclose(
            matrix_to_dense(pkg, e),
            dense_controlled(SWAP, (2, 1), (0,), n),
            atol=1e-12,
        )

    def test_overlapping_target_control_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(DDError):
            controlled_gate(pkg, X, (1,), (1,))

    def test_no_controls_delegates(self):
        pkg = DDPackage(3)
        a = controlled_gate(pkg, X, (1,), ())
        b = single_qubit_gate(pkg, X, 1)
        assert a.n is b.n and a.w == b.w


class TestTwoQubitGates:
    @pytest.mark.parametrize("pair", [(2, 0), (0, 2), (3, 1), (1, 3)])
    def test_swap_matches_permutation(self, pair):
        n = 4
        pkg = DDPackage(n)
        e = two_qubit_gate(pkg, SWAP, *pair)
        dense = matrix_to_dense(pkg, e)
        a, b = pair
        for col in range(1 << n):
            ba, bb = (col >> a) & 1, (col >> b) & 1
            row = (col & ~(1 << a) & ~(1 << b)) | (bb << a) | (ba << b)
            assert dense[row, col] == pytest.approx(1.0)

    def test_generic_4x4_unitary(self):
        n = 3
        rng = np.random.default_rng(5)
        m = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        q, _ = np.linalg.qr(m)
        pkg = DDPackage(n)
        e = two_qubit_gate(pkg, q, 2, 0)
        dense = matrix_to_dense(pkg, e)
        # Verify a handful of entries via the block-index semantics.
        for row in range(8):
            for col in range(8):
                if ((row >> 1) & 1) != ((col >> 1) & 1):
                    assert dense[row, col] == pytest.approx(0, abs=1e-12)
                else:
                    r2 = (((row >> 2) & 1) << 1) | (row & 1)
                    c2 = (((col >> 2) & 1) << 1) | (col & 1)
                    assert dense[row, col] == pytest.approx(q[r2, c2])

    def test_same_qubit_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(DDError):
            two_qubit_gate(pkg, SWAP, 1, 1)


class TestFactorsAndEntries:
    def test_factors_product(self):
        pkg = DDPackage(3)
        e = matrix_from_factors(pkg, [X, H, Z])
        ref = np.kron(Z, np.kron(H, X))
        np.testing.assert_allclose(matrix_to_dense(pkg, e), ref, atol=1e-12)

    def test_factor_count_mismatch_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(DDError):
            matrix_from_factors(pkg, [])
        with pytest.raises(DDError):
            matrix_from_factors(pkg, [X, H, Z, X])

    def test_fewer_factors_builds_windowed_dd(self):
        # 1 <= k < num_qubits factors is the identity-skipped (windowed)
        # build: root at level k-1, levels above implicit identity.
        pkg = DDPackage(3)
        e = matrix_from_factors(pkg, [X, H])
        assert e.n.level == 1
        ref = np.kron(H, X)
        np.testing.assert_allclose(
            matrix_to_dense(pkg, e, num_qubits=2), ref, atol=1e-12
        )

    def test_matrix_entry_matches_dense(self):
        pkg = DDPackage(3)
        e = controlled_gate(pkg, H, (0,), (2,))
        dense = matrix_to_dense(pkg, e)
        for r in range(8):
            for c in range(8):
                assert matrix_entry(pkg, e, r, c) == pytest.approx(
                    dense[r, c], abs=1e-12
                )

    def test_figure_2a_entry(self):
        # The paper's worked example: M[0][2] of H (x) I at 2 qubits is
        # 1/sqrt(2) * 1 * 1.
        pkg = DDPackage(2)
        e = single_qubit_gate(pkg, H, 1)
        assert matrix_entry(pkg, e, 0, 2) == pytest.approx(1 / math.sqrt(2))
