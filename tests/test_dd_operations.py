"""Unit tests for DD algebra: add, matrix-vector, matrix-matrix, scale."""

import math

import numpy as np
import pytest

from repro.dd import (
    DDPackage,
    madd,
    matrix_to_dense,
    mm_multiply,
    mv_multiply,
    scale,
    single_qubit_gate,
    two_qubit_gate,
    vadd,
    vector_from_array,
    vector_to_array,
)

from tests.conftest import random_state

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Z = np.diag([1, -1]).astype(complex)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


class TestVectorAdd:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_numpy(self, seed):
        n = 4
        pkg = DDPackage(n)
        a = random_state(n, seed)
        b = random_state(n, seed + 100)
        ea, eb = vector_from_array(pkg, a), vector_from_array(pkg, b)
        np.testing.assert_allclose(
            vector_to_array(pkg, vadd(pkg, ea, eb)), a + b, atol=1e-10
        )

    def test_zero_identity_element(self):
        pkg = DDPackage(3)
        a = vector_from_array(pkg, random_state(3, 7))
        zero = vector_from_array(pkg, np.zeros(8))
        assert vadd(pkg, a, zero) == a
        assert vadd(pkg, zero, a) == a

    def test_cancellation_gives_zero_edge(self):
        pkg = DDPackage(3)
        arr = random_state(3, 3)
        a = vector_from_array(pkg, arr)
        b = vector_from_array(pkg, -arr)
        assert vadd(pkg, a, b).is_zero

    def test_commutativity_canonical(self):
        pkg = DDPackage(3)
        a = vector_from_array(pkg, random_state(3, 1))
        b = vector_from_array(pkg, random_state(3, 2))
        ab = vadd(pkg, a, b)
        ba = vadd(pkg, b, a)
        assert ab.n is ba.n
        assert ab.w == pytest.approx(ba.w)

    def test_cache_reused_across_rescaling(self):
        # (2a) + (2b) must hit the same cache line as a + b.
        pkg = DDPackage(3)
        a = vector_from_array(pkg, random_state(3, 1))
        b = vector_from_array(pkg, random_state(3, 2))
        vadd(pkg, a, b)
        cache_size = len(pkg.cache_vadd)
        a2, b2 = scale(pkg, a, 2.0), scale(pkg, b, 2.0)
        vadd(pkg, a2, b2)
        assert len(pkg.cache_vadd) == cache_size


class TestMatrixAdd:
    def test_matches_numpy(self):
        pkg = DDPackage(3)
        a = single_qubit_gate(pkg, H, 0)
        b = single_qubit_gate(pkg, X, 2)
        got = matrix_to_dense(pkg, madd(pkg, a, b))
        ref = matrix_to_dense(pkg, a) + matrix_to_dense(pkg, b)
        np.testing.assert_allclose(got, ref, atol=1e-10)


class TestMatrixVector:
    @pytest.mark.parametrize("target", [0, 1, 2])
    def test_single_qubit_gate_application(self, target):
        n = 3
        pkg = DDPackage(n)
        arr = random_state(n, target)
        v = vector_from_array(pkg, arr)
        m = single_qubit_gate(pkg, H, target)
        got = vector_to_array(pkg, mv_multiply(pkg, m, v))
        ref = matrix_to_dense(pkg, m) @ arr
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_two_qubit_gate_application(self):
        n = 3
        pkg = DDPackage(n)
        arr = random_state(n, 11)
        v = vector_from_array(pkg, arr)
        m = two_qubit_gate(pkg, SWAP, 2, 0)
        got = vector_to_array(pkg, mv_multiply(pkg, m, v))
        np.testing.assert_allclose(got, matrix_to_dense(pkg, m) @ arr, atol=1e-10)

    def test_zero_operands_short_circuit(self):
        pkg = DDPackage(2)
        m = single_qubit_gate(pkg, H, 0)
        zero_v = vector_from_array(pkg, np.zeros(4))
        assert mv_multiply(pkg, m, zero_v).is_zero

    def test_norm_preserved_by_unitary(self):
        pkg = DDPackage(4)
        arr = random_state(4, 21)
        v = vector_from_array(pkg, arr)
        for target in range(4):
            v = mv_multiply(pkg, single_qubit_gate(pkg, H, target), v)
        out = vector_to_array(pkg, v)
        assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-10)

    def test_compute_table_hit(self):
        pkg = DDPackage(3)
        arr = random_state(3, 2)
        v = vector_from_array(pkg, arr)
        m = single_qubit_gate(pkg, H, 1)
        r1 = mv_multiply(pkg, m, v)
        misses = pkg.ctable.misses
        r2 = mv_multiply(pkg, m, v)
        assert r1 == r2
        # Fully cached: no new canonical weights were created.
        assert pkg.ctable.misses == misses


class TestMatrixMatrix:
    def test_matches_numpy_product(self):
        pkg = DDPackage(3)
        a = single_qubit_gate(pkg, H, 1)
        b = two_qubit_gate(pkg, SWAP, 2, 0)
        got = matrix_to_dense(pkg, mm_multiply(pkg, a, b))
        ref = matrix_to_dense(pkg, a) @ matrix_to_dense(pkg, b)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_product_with_identity(self):
        pkg = DDPackage(3)
        a = single_qubit_gate(pkg, X, 0)
        i = pkg.identity_edge(2)
        left = mm_multiply(pkg, i, a)
        right = mm_multiply(pkg, a, i)
        assert left.n is a.n and right.n is a.n

    def test_self_inverse_gate_squares_to_identity(self):
        pkg = DDPackage(3)
        a = single_qubit_gate(pkg, X, 1)
        sq = mm_multiply(pkg, a, a)
        assert sq.n is pkg.identity_edge(2).n
        assert sq.w == pytest.approx(1.0)

    def test_associativity(self):
        pkg = DDPackage(3)
        a = single_qubit_gate(pkg, H, 0)
        b = single_qubit_gate(pkg, X, 1)
        c = single_qubit_gate(pkg, Z, 2)
        left = mm_multiply(pkg, mm_multiply(pkg, a, b), c)
        right = mm_multiply(pkg, a, mm_multiply(pkg, b, c))
        np.testing.assert_allclose(
            matrix_to_dense(pkg, left), matrix_to_dense(pkg, right), atol=1e-10
        )


class TestScale:
    def test_scale_scales_amplitudes(self):
        pkg = DDPackage(3)
        arr = random_state(3, 8)
        v = vector_from_array(pkg, arr)
        np.testing.assert_allclose(
            vector_to_array(pkg, scale(pkg, v, 2j)), 2j * arr, atol=1e-10
        )

    def test_scale_by_zero_is_zero_edge(self):
        pkg = DDPackage(3)
        v = vector_from_array(pkg, random_state(3, 8))
        assert scale(pkg, v, 0).is_zero
