"""Unit tests for DDPackage: normalization, hash-consing, GC."""

import math

import numpy as np
import pytest

from repro.common.errors import DDError
from repro.dd import (
    DDPackage,
    TERMINAL,
    ZERO_EDGE,
    matrix_to_dense,
    single_qubit_gate,
    vector_from_array,
    vector_to_array,
    zero_state,
)

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)


class TestVectorNormalization:
    def test_zero_children_give_zero_edge(self, pkg3):
        e = pkg3.make_vnode(0, ZERO_EDGE, ZERO_EDGE)
        assert e is ZERO_EDGE

    def test_outgoing_weights_norm_one(self, pkg3):
        e0 = pkg3.edge(0.3, TERMINAL)
        e1 = pkg3.edge(0.4j, TERMINAL)
        e = pkg3.make_vnode(0, e0, e1)
        w0, w1 = e.n.edges[0].w, e.n.edges[1].w
        assert abs(w0) ** 2 + abs(w1) ** 2 == pytest.approx(1.0)

    def test_first_nonzero_outgoing_weight_real_positive(self, pkg3):
        e0 = pkg3.edge(-0.6j, TERMINAL)
        e1 = pkg3.edge(0.8, TERMINAL)
        e = pkg3.make_vnode(0, e0, e1)
        lead = e.n.edges[0].w
        assert lead.imag == pytest.approx(0.0)
        assert lead.real > 0

    def test_incoming_weight_restores_values(self, pkg3):
        e0 = pkg3.edge(0.3, TERMINAL)
        e1 = pkg3.edge(-0.4, TERMINAL)
        e = pkg3.make_vnode(0, e0, e1)
        assert e.w * e.n.edges[0].w == pytest.approx(0.3)
        assert e.w * e.n.edges[1].w == pytest.approx(-0.4)

    def test_scalar_multiples_share_node(self, pkg3):
        a = pkg3.make_vnode(0, pkg3.edge(0.6, TERMINAL), pkg3.edge(0.8, TERMINAL))
        b = pkg3.make_vnode(0, pkg3.edge(0.3, TERMINAL), pkg3.edge(0.4, TERMINAL))
        assert a.n is b.n

    def test_level_mismatch_rejected(self, pkg3):
        inner = pkg3.make_vnode(0, pkg3.one_edge(), ZERO_EDGE)
        with pytest.raises(DDError):
            pkg3.make_vnode(2, inner, ZERO_EDGE)


class TestMatrixNormalization:
    def test_all_zero_children_give_zero_edge(self, pkg3):
        e = pkg3.make_mnode(0, (ZERO_EDGE,) * 4)
        assert e is ZERO_EDGE

    def test_leading_max_weight_becomes_one(self, pkg3):
        edges = tuple(
            pkg3.edge(w, TERMINAL) for w in (0.5, 0.5, 0.5, -0.5)
        )
        e = pkg3.make_mnode(0, edges)
        assert e.n.edges[0].w == 1.0
        assert e.w == pytest.approx(0.5)

    def test_hadamard_node_weights_match_figure_2a(self, pkg3):
        # Figure 2a: H's node has outgoing weights (1, 1, 1, -1) and
        # incoming weight 1/sqrt(2).
        e = single_qubit_gate(pkg3, H, 0)
        # Peel the identity pass-through levels added above the target.
        node = e.n
        while node.level > 0:
            node = node.edges[0].n
        ws = [c.w for c in node.edges]
        assert ws == [1.0, 1.0, 1.0, -1.0]

    def test_wrong_edge_count_rejected(self, pkg3):
        with pytest.raises(DDError):
            pkg3.make_mnode(0, (ZERO_EDGE, ZERO_EDGE))


class TestHashConsing:
    def test_identical_structures_are_same_object(self, pkg3):
        a = pkg3.make_vnode(0, pkg3.edge(1.0, TERMINAL), ZERO_EDGE)
        b = pkg3.make_vnode(0, pkg3.edge(1.0, TERMINAL), ZERO_EDGE)
        assert a.n is b.n

    def test_unique_node_count_tracks_tables(self, pkg3):
        before = pkg3.unique_node_count
        pkg3.make_vnode(0, pkg3.one_edge(), ZERO_EDGE)
        pkg3.make_vnode(0, ZERO_EDGE, pkg3.one_edge())
        assert pkg3.unique_node_count == before + 2

    def test_identity_edge_memoized(self, pkg3):
        a = pkg3.identity_edge(2)
        b = pkg3.identity_edge(2)
        assert a.n is b.n and a.w == b.w

    def test_identity_edge_is_identity_matrix(self, pkg3):
        e = pkg3.identity_edge(2)
        np.testing.assert_allclose(matrix_to_dense(pkg3, e), np.eye(8))


class TestGarbageCollection:
    def test_unreachable_nodes_removed(self):
        pkg = DDPackage(4)
        v = vector_from_array(pkg, np.arange(1, 17, dtype=complex))
        junk = vector_from_array(
            pkg, np.random.default_rng(0).normal(size=16) + 0j
        )
        before = pkg.unique_node_count
        removed = pkg.collect_garbage([v])
        assert removed > 0
        assert pkg.unique_node_count < before

    def test_roots_survive_and_still_evaluate(self):
        pkg = DDPackage(4)
        arr = np.linspace(1, 2, 16).astype(complex)
        v = vector_from_array(pkg, arr)
        vector_from_array(pkg, np.ones(16, dtype=complex))  # garbage
        pkg.collect_garbage([v])
        np.testing.assert_allclose(vector_to_array(pkg, v), arr, atol=1e-12)

    def test_gc_clears_compute_tables(self):
        pkg = DDPackage(3)
        from repro.dd.operations import mv_multiply

        m = single_qubit_gate(pkg, H, 1)
        s = zero_state(pkg)
        mv_multiply(pkg, m, s)
        assert pkg.cache_mv
        pkg.collect_garbage([s, m])
        assert not pkg.cache_mv

    def test_peak_node_count_monotone(self):
        pkg = DDPackage(4)
        v = vector_from_array(pkg, np.arange(1, 17, dtype=complex))
        peak = pkg.peak_node_count
        pkg.collect_garbage([v])
        assert pkg.peak_node_count == peak
        assert pkg.unique_node_count <= peak


class TestValidation:
    def test_zero_qubits_rejected(self):
        with pytest.raises(DDError):
            DDPackage(0)

    def test_edge_canonicalizes_zero(self, pkg3):
        assert pkg3.edge(1e-15, TERMINAL) is ZERO_EDGE


class TestBuildMarkRewind:
    def _dd_weights(self, e):
        out = []
        stack = [e]
        seen = set()
        while stack:
            cur = stack.pop()
            out.append(cur.w)
            if cur.is_zero or id(cur.n) in seen or cur.n.is_terminal:
                continue
            seen.add(id(cur.n))
            stack.extend(cur.n.edges)
        return out

    def test_rewind_restores_counters_and_tables(self):
        pkg = DDPackage(3)
        single_qubit_gate(pkg, H, 0)
        mark = pkg.build_mark()
        mnodes = pkg.matrix_node_count
        created = pkg.nodes_created
        ct = len(pkg.ctable)
        u = np.array([[0.6, 0.8], [0.8, -0.6]])
        single_qubit_gate(pkg, u, 2)
        assert pkg.matrix_node_count > mnodes
        pkg.rewind_to_mark(mark)
        assert pkg.matrix_node_count == mnodes
        assert pkg.nodes_created == created
        assert len(pkg.ctable) == ct

    def test_rebuild_after_rewind_is_bit_identical(self):
        theta = 0.37281
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        ry = np.array([[c, -s], [s, c]])
        other = np.array([[0.28, 0.96], [0.96, -0.28]])
        pkg = DDPackage(3)
        single_qubit_gate(pkg, H, 1)
        mark = pkg.build_mark()
        first = single_qubit_gate(pkg, ry, 0)
        first_idx = first.n.idx
        first_w = self._dd_weights(first)
        pkg.rewind_to_mark(mark)
        # An interleaved different build must leave no trace ...
        single_qubit_gate(pkg, other, 2)
        pkg.rewind_to_mark(mark)
        again = single_qubit_gate(pkg, ry, 0)
        # ... so the rebuild sees the same creation order and weights.
        assert again.n.idx == first_idx
        assert self._dd_weights(again) == first_w

    def test_evicted_nodes_stay_valid_through_kept_edges(self):
        pkg = DDPackage(3)
        mark = pkg.build_mark()
        kept = single_qubit_gate(pkg, H, 1)
        pkg.rewind_to_mark(mark)
        dense = matrix_to_dense(pkg, kept)
        expect = np.kron(np.eye(2), np.kron(H, np.eye(2)))
        np.testing.assert_allclose(dense, expect, atol=1e-12)

    def test_rewind_across_gc_rejected(self):
        pkg = DDPackage(3)
        mark = pkg.build_mark()
        e = single_qubit_gate(pkg, H, 0)
        pkg.collect_garbage([e])
        with pytest.raises(DDError):
            pkg.rewind_to_mark(mark)

    def test_gate_cache_rewind_drops_added_entries(self):
        from repro.backends.gatecache import GateDDCache
        from repro.circuits.gates import Gate

        pkg = DDPackage(3)
        cache = GateDDCache(pkg)
        cache.get(Gate("h", (0,)))
        m = cache.mark()
        cache.get(Gate("ry", (1,), params=(0.5,)))
        assert len(cache) == m + 1
        cache.rewind(m)
        assert len(cache) == m
        # The surviving prefix entry still serves lookups.
        hits = cache.hits
        cache.get(Gate("h", (0,)))
        assert cache.hits == hits + 1

    def test_rewind_rolls_back_windowed_builds(self):
        # Identity-skipped (windowed) gate DDs must rewind exactly like
        # full-height ones: a rebuild after rewind-plus-interference sees
        # the same creation indices and weights.
        from repro.backends.gatecache import build_gate_dd
        from repro.circuits.gates import Gate

        pkg = DDPackage(4)
        g = Gate("cx", (1,), (0,))
        mark = pkg.build_mark()
        first = build_gate_dd(pkg, g, windowed=True)
        assert first.n.level == 1  # root at max(gate.qubits), not n-1
        first_idx = first.n.idx
        first_w = self._dd_weights(first)
        pkg.rewind_to_mark(mark)
        build_gate_dd(pkg, Gate("ry", (3,), params=(0.7,)), windowed=True)
        pkg.rewind_to_mark(mark)
        again = build_gate_dd(pkg, g, windowed=True)
        assert again.n.idx == first_idx
        assert self._dd_weights(again) == first_w

    def test_gate_cache_rewind_drops_windowed_entries(self):
        # Windowed and full-height entries for the same gate are distinct
        # keys; rewind drops both kinds added past the mark.
        from repro.backends.gatecache import GateDDCache
        from repro.circuits.gates import Gate

        pkg = DDPackage(3)
        cache = GateDDCache(pkg)
        cache.get(Gate("h", (0,)), windowed=True)
        m = cache.mark()
        cache.get(Gate("h", (0,)))  # full-height: its own entry
        cache.get(Gate("ry", (1,), params=(0.5,)), windowed=True)
        assert len(cache) == m + 2
        cache.rewind(m)
        assert len(cache) == m
        hits = cache.hits
        cache.get(Gate("h", (0,)), windowed=True)
        assert cache.hits == hits + 1

    def test_drop_windowed_keeps_full_height_entries(self):
        from repro.backends.gatecache import GateDDCache
        from repro.circuits.gates import Gate

        pkg = DDPackage(3)
        cache = GateDDCache(pkg)
        cache.get(Gate("h", (0,)), windowed=True)
        cache.get(Gate("h", (0,)))
        cache.get(Gate("cx", (1,), (0,)), windowed=True)
        assert len(cache) == 3
        cache.drop_windowed()
        assert len(cache) == 1
        hits = cache.hits
        cache.get(Gate("h", (0,)))
        assert cache.hits == hits + 1
