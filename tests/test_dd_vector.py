"""Unit tests for vector DDs: build, export, amplitudes, node counts."""

import numpy as np
import pytest

from repro.common.errors import DDError
from repro.dd import (
    DDPackage,
    amplitude,
    basis_state,
    node_count,
    vector_from_array,
    vector_to_array,
    zero_state,
)

from tests.conftest import random_state


class TestRoundTrip:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7])
    def test_random_state_roundtrip(self, n):
        pkg = DDPackage(n)
        arr = random_state(n, seed=n)
        e = vector_from_array(pkg, arr)
        np.testing.assert_allclose(vector_to_array(pkg, e), arr, atol=1e-10)

    def test_sparse_state_roundtrip(self):
        pkg = DDPackage(4)
        arr = np.zeros(16, dtype=complex)
        arr[3] = 0.6
        arr[12] = 0.8j
        e = vector_from_array(pkg, arr)
        np.testing.assert_allclose(vector_to_array(pkg, e), arr, atol=1e-12)

    def test_all_zero_array_is_zero_edge(self):
        pkg = DDPackage(3)
        e = vector_from_array(pkg, np.zeros(8))
        assert e.is_zero
        np.testing.assert_array_equal(vector_to_array(pkg, e), np.zeros(8))

    def test_bad_length_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(DDError):
            vector_from_array(pkg, np.ones(6))

    def test_scalar_array_rejected(self):
        pkg = DDPackage(1)
        with pytest.raises(DDError):
            vector_from_array(pkg, np.ones(1))


class TestBasisStates:
    def test_zero_state_amplitudes(self):
        pkg = DDPackage(3)
        arr = vector_to_array(pkg, zero_state(pkg))
        expected = np.zeros(8)
        expected[0] = 1
        np.testing.assert_allclose(arr, expected)

    @pytest.mark.parametrize("index", [0, 1, 5, 7])
    def test_basis_state_amplitudes(self, index):
        pkg = DDPackage(3)
        arr = vector_to_array(pkg, basis_state(pkg, index))
        expected = np.zeros(8)
        expected[index] = 1
        np.testing.assert_allclose(arr, expected)

    def test_basis_state_has_linear_node_count(self):
        pkg = DDPackage(8)
        e = basis_state(pkg, 0b10110101)
        assert node_count(e) == 8

    def test_out_of_range_index_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(DDError):
            basis_state(pkg, 8)


class TestAmplitude:
    def test_matches_array(self):
        pkg = DDPackage(4)
        arr = random_state(4, seed=42)
        e = vector_from_array(pkg, arr)
        for i in range(16):
            assert amplitude(pkg, e, i) == pytest.approx(arr[i], abs=1e-10)

    def test_zero_edge_amplitude(self):
        pkg = DDPackage(2)
        e = vector_from_array(pkg, np.zeros(4))
        assert amplitude(pkg, e, 2) == 0j


class TestNodeCount:
    def test_uniform_state_is_a_chain(self):
        # |+...+> has one node per level: maximal regularity.
        pkg = DDPackage(6)
        arr = np.full(64, 1 / 8.0)
        e = vector_from_array(pkg, arr)
        assert node_count(e) == 6

    def test_random_state_is_near_worst_case(self):
        # A generic random state shares nothing: 2**n - 1 nodes.
        n = 6
        pkg = DDPackage(n)
        e = vector_from_array(pkg, random_state(n, seed=9))
        assert node_count(e) == (1 << n) - 1

    def test_zero_edge_counts_zero(self):
        pkg = DDPackage(3)
        assert node_count(vector_from_array(pkg, np.zeros(8))) == 0

    def test_shared_structure_counted_once(self):
        # [a, a] pattern: top node's children collapse to one subtree.
        pkg = DDPackage(3)
        quarter = np.array([0.5, 0.25, 0.125, 0.0625])
        arr = np.concatenate([quarter, quarter])
        e = vector_from_array(pkg, arr)
        # top node + 2 shared levels = 3, not 7
        assert node_count(e) == 3


class TestExportValidation:
    def test_wrong_root_level_rejected(self):
        pkg = DDPackage(4)
        sub = vector_from_array(pkg, random_state(3, seed=1))
        with pytest.raises(DDError):
            vector_to_array(pkg, sub)  # root at level 2, expected 3
