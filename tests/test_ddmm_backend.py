"""Tests for the matrix-matrix DD backend (ref [100]) and DD observables."""

import numpy as np
import pytest

from repro.backends import DDMatrixSimulator, DDSimulator, StatevectorSimulator
from repro.circuits import get_circuit
from repro.dd import amplitude
from repro.observables import (
    PauliString,
    dd_pauli_expectation,
    dd_sum_expectation,
    transverse_field_ising,
)

from tests.conftest import reference_state


class TestDDMatrixSimulator:
    @pytest.mark.parametrize(
        "family,n,kwargs",
        [("ghz", 6, {}), ("adder", 8, {}), ("qft", 5, {}),
         ("dnn", 5, {"layers": 2}), ("knn", 5, {})],
    )
    def test_agrees_with_reference(self, family, n, kwargs):
        c = get_circuit(family, n, **kwargs)
        r = DDMatrixSimulator().run(c)
        ref = reference_state(c)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(
            1.0, abs=1e-8
        )

    def test_operator_trace_recorded(self):
        c = get_circuit("ghz", 6)
        r = DDMatrixSimulator().run(c)
        sizes = [g.dd_size for g in r.gate_trace]
        assert all(s >= 1 for s in sizes)
        assert r.metadata["operator_dd_size"] == sizes[-1]

    def test_mm_wins_on_compact_operators(self):
        # The whole-circuit operator of an adder stays structured: applying
        # it once matches the per-gate MV result but with a compact final
        # operator (the [100] trade-off in its favourable regime).
        c = get_circuit("adder", 10)
        r = DDMatrixSimulator().run(c)
        assert r.metadata["operator_dd_size"] < 500

    def test_mm_loses_on_irregular_circuits(self):
        # Random circuits make the accumulated operator explode -- the
        # unfavourable regime that motivates per-gate MV (and FlatDD).
        c = get_circuit("supremacy", 6, cycles=6)
        mm = DDMatrixSimulator().run(c)
        mv = DDSimulator().run(c)
        assert (
            mm.metadata["operator_dd_size"]
            > 4 * mv.metadata["final_dd_size"]
        )

    def test_keep_dd_mode(self):
        c = get_circuit("ghz", 30)
        r = DDMatrixSimulator().run(c, keep_dd=True)
        pkg = r.metadata["package"]
        state = r.metadata["state_dd"]
        assert abs(amplitude(pkg, state, 0)) == pytest.approx(2 ** -0.5)
        assert r.state.size == 0

    def test_timeout(self):
        c = get_circuit("supremacy", 10, cycles=12)
        r = DDMatrixSimulator().run(c, max_seconds=0.05)
        assert r.metadata["timed_out"]


class TestDDExpectation:
    def test_matches_array_expectation(self):
        n = 6
        c = get_circuit("vqe", n)
        arr = StatevectorSimulator().run(c).state
        r = DDSimulator().run(c, keep_dd=True)
        pkg, state = r.metadata["package"], r.metadata["state_dd"]
        ham = transverse_field_ising(n, j=1.0, h=0.7)
        dd_value = dd_sum_expectation(pkg, state, ham)
        array_value = ham.expectation(arr)
        assert dd_value == pytest.approx(array_value, abs=1e-8)

    def test_single_pauli_terms(self):
        n = 4
        c = get_circuit("qft", n)
        arr = StatevectorSimulator().run(c).state
        r = DDSimulator().run(c, keep_dd=True)
        pkg, state = r.metadata["package"], r.metadata["state_dd"]
        for label in ("ZIII", "IXII", "IIYI", "ZZXY"):
            p = PauliString.from_label(label, coefficient=0.7)
            assert dd_pauli_expectation(pkg, state, p) == pytest.approx(
                p.expectation(arr), abs=1e-8
            )

    def test_large_scale_ghz_parity(self):
        # <Z...Z> on a 40-qubit GHZ state: +1, computed entirely on DDs.
        n = 40
        r = DDSimulator().run(get_circuit("ghz", n), keep_dd=True)
        pkg, state = r.metadata["package"], r.metadata["state_dd"]
        parity = PauliString(tuple((q, "Z") for q in range(n)))
        assert dd_pauli_expectation(pkg, state, parity) == pytest.approx(
            1.0, abs=1e-9
        )
        single = PauliString.z(7)
        assert dd_pauli_expectation(pkg, state, single) == pytest.approx(
            0.0, abs=1e-9
        )
        cross = PauliString(((3, "X"), (5, "Z")))
        assert dd_pauli_expectation(pkg, state, cross) == pytest.approx(
            0.0, abs=1e-9
        )
