"""Unit tests for DMAV (Algorithms 1 and 2) and its plan compiler."""

import math

import numpy as np
import pytest

from repro.backends.gatecache import build_gate_dd
from repro.circuits import Gate
from repro.common.config import DENSE_BLOCK_LEVEL
from repro.core.cost_model import CostModel, assign_cache_tasks
from repro.core.dmav import assign_tasks, dmav_cached, dmav_nocache
from repro.core.plan import PlanCache
from repro.dd import DDPackage, matrix_to_dense, single_qubit_gate
from repro.dd.matrix import controlled_gate
from repro.parallel.arena import BufferArena
from repro.parallel.partition import border_level
from repro.parallel.pool import TaskRunner
from repro.common.errors import ParallelError

from tests.conftest import random_state

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=complex)


def _random_gates(pkg, seed=0):
    """A spread of gate DDs covering 1q / controlled / low / high targets."""
    n = pkg.num_qubits
    gates = [
        Gate("h", (0,)),
        Gate("h", (n - 1,)),
        Gate("rz", (n // 2,), params=(0.7,)),
        Gate("cx", (0,), (n - 1,)),
        Gate("cx", (n - 1,), (0,)),
        Gate("swap", (0, n - 1)),
        Gate("ccx", (1,), (0, n - 1)) if n >= 3 else Gate("x", (0,)),
        Gate("cp", (n - 2,), (1,), params=(0.3,)) if n >= 3 else Gate("z", (0,)),
    ]
    return [build_gate_dd(pkg, g) for g in gates]


class TestAssign:
    def test_border_level_definition(self):
        assert border_level(10, 4) == 10 - 2 - 1

    def test_single_thread_gets_root(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 2)
        tasks = assign_tasks(pkg, m, 1)
        assert len(tasks) == 1
        assert len(tasks[0]) == 1
        node, i_v, coeff = tasks[0][0]
        assert node is m.n and i_v == 0 and coeff == m.w

    def test_threads_split_row_space(self):
        pkg = DDPackage(4)
        m = pkg.identity_edge(3)
        tasks = assign_tasks(pkg, m, 4)
        # Identity: each thread gets exactly its diagonal block, reading
        # the matching V block.
        for u, thread_tasks in enumerate(tasks):
            assert len(thread_tasks) == 1
            _, i_v, _ = thread_tasks[0]
            assert i_v == u * 4

    def test_h_on_top_qubit_gives_two_tasks_per_thread(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 3)
        tasks = assign_tasks(pkg, m, 2)
        # H's 2x2 block at the root is dense: each thread (row block)
        # multiplies both column blocks.
        assert [len(t) for t in tasks] == [2, 2]

    def test_invalid_thread_count_rejected(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 0)
        with pytest.raises(ParallelError):
            assign_tasks(pkg, m, 3)
        with pytest.raises(ParallelError):
            assign_tasks(pkg, m, 32)


class TestDMAVNoCache:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_dense_for_gate_suite(self, threads):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=threads)
        for m in _random_gates(pkg):
            w, stats = dmav_nocache(pkg, m, v, threads)
            ref = matrix_to_dense(pkg, m) @ v
            np.testing.assert_allclose(w, ref, atol=1e-10)
            assert stats.threads == threads

    def test_out_buffer_reused_and_zeroed(self):
        pkg = DDPackage(4)
        v = random_state(4, seed=1)
        m = single_qubit_gate(pkg, H, 2)
        out = np.full(16, 99.0, dtype=complex)
        w, _ = dmav_nocache(pkg, m, v, 1, out=out)
        assert w is out
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)

    def test_aliased_output_rejected(self):
        pkg = DDPackage(3)
        v = random_state(3, seed=1)
        m = single_qubit_gate(pkg, H, 0)
        with pytest.raises(ValueError):
            dmav_nocache(pkg, m, v, 1, out=v)

    def test_wrong_state_length_rejected(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 0)
        with pytest.raises(ValueError):
            dmav_nocache(pkg, m, np.zeros(8, dtype=complex), 1)

    def test_thread_pool_execution(self):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=5)
        m = controlled_gate(pkg, X, (0,), (4,))
        with TaskRunner(4, use_pool=True) as runner:
            w, _ = dmav_nocache(pkg, m, v, 4, runner=runner)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)

    @pytest.mark.parametrize("dense_level", [-1, 0, 2, 8])
    def test_dense_level_sweep(self, dense_level):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=2)
        m = controlled_gate(pkg, H, (2,), (0, 4))
        w, _ = dmav_nocache(pkg, m, v, 2, dense_level=dense_level)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)


class TestDMAVCached:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_matches_dense_for_gate_suite(self, threads):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=threads + 10)
        for m in _random_gates(pkg):
            w, stats = dmav_cached(pkg, m, v, threads)
            ref = matrix_to_dense(pkg, m) @ v
            np.testing.assert_allclose(w, ref, atol=1e-10)
            assert stats.used_cache

    def test_cache_hits_on_shared_border_nodes(self):
        # H on the top qubit: both column tasks of a thread see the same
        # identity node below -> one real run + one scalar multiply.
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=3)
        m = single_qubit_gate(pkg, H, n - 1)
        w, stats = dmav_cached(pkg, m, v, 2)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)
        assert stats.cache_hits >= 1

    def test_buffer_sharing_on_disjoint_outputs(self):
        # Identity-like gates produce non-overlapping partial outputs, so
        # threads share one buffer (Algorithm 2 lines 22-25).
        n = 5
        pkg = DDPackage(n)
        m = pkg.identity_edge(n - 1)
        assignment = assign_cache_tasks(pkg, m, 4)
        assert assignment.num_buffers == 1

    def test_dense_gate_needs_multiple_buffers(self):
        n = 5
        pkg = DDPackage(n)
        m = single_qubit_gate(pkg, H, n - 1)
        assignment = assign_cache_tasks(pkg, m, 2)
        # Both threads write both halves: outputs overlap, buffers split.
        assert assignment.num_buffers == 2

    def test_precomputed_assignment_reused(self):
        n = 4
        pkg = DDPackage(n)
        v = random_state(n, seed=4)
        m = single_qubit_gate(pkg, H, 1)
        assignment = assign_cache_tasks(pkg, m, 2)
        w, _ = dmav_cached(pkg, m, v, 2, assignment=assignment)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)

    def test_cached_equals_uncached(self):
        n = 6
        pkg = DDPackage(n)
        v = random_state(n, seed=8)
        for m in _random_gates(pkg):
            w1, _ = dmav_nocache(pkg, m, v, 4)
            w2, _ = dmav_cached(pkg, m, v, 4)
            np.testing.assert_allclose(w1, w2, atol=1e-10)

    def test_thread_pool_execution(self):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=6)
        m = single_qubit_gate(pkg, H, n - 1)
        with TaskRunner(4, use_pool=True) as runner:
            w, _ = dmav_cached(pkg, m, v, 4, runner=runner)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)


def _plan_cache(pkg, threads):
    return PlanCache(pkg, threads, CostModel(threads), DENSE_BLOCK_LEVEL)


def _task_ids(rows):
    return [[(id(node), off, coeff) for node, off, coeff in row] for row in rows]


class TestGatePlan:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_plan_reproduces_legacy_partitions_exactly(self, threads):
        n = 5
        pkg = DDPackage(n)
        plans = _plan_cache(pkg, threads)
        for m in _random_gates(pkg):
            plan = plans.get(m)
            legacy_rows = assign_tasks(pkg, m, threads)
            legacy_cache = assign_cache_tasks(pkg, m, threads)
            # Same nodes, same offsets, bit-identical coefficients, same
            # per-thread order -- the plan is a cached transcript of the
            # legacy descents, not an approximation of them.
            assert _task_ids(plan.row_tasks) == _task_ids(legacy_rows)
            assert _task_ids(plan.assignment.tasks) == _task_ids(
                legacy_cache.tasks
            )
            assert plan.assignment.buffer_of == legacy_cache.buffer_of
            assert plan.assignment.num_buffers == legacy_cache.num_buffers

    def test_plan_cost_matches_cost_model(self):
        n = 5
        pkg = DDPackage(n)
        plans = _plan_cache(pkg, 4)
        fresh = CostModel(4)
        for m in _random_gates(pkg):
            assert plans.get(m).cost == fresh.evaluate(pkg, m)

    def test_repeated_root_served_from_plan_cache(self):
        pkg = DDPackage(5)
        plans = _plan_cache(pkg, 4)
        m = build_gate_dd(pkg, Gate("h", (0,)))
        first = plans.get(m)
        again = plans.get(m)
        assert again is first
        assert plans.compiles == 1
        assert plans.gate_hits == 1
        # A whole-plan hit is task-weighted: all of the plan's tasks count
        # as served from cache.
        assert plans.hits >= first.num_tasks

    def test_structural_memo_shares_across_distinct_roots(self):
        # h(0) and rz(0) differ at the bottom level but share the
        # identity structure above it, so the second compile is mostly
        # memo hits even though its root was never seen.
        pkg = DDPackage(6)
        plans = _plan_cache(pkg, 4)
        plans.get(build_gate_dd(pkg, Gate("h", (0,))))
        before = plans.hits
        plans.get(build_gate_dd(pkg, Gate("rz", (0,), params=(0.7,))))
        assert plans.compiles == 2
        assert plans.hits > before

    def test_gc_epoch_invalidates_plans(self):
        pkg = DDPackage(5)
        plans = _plan_cache(pkg, 2)
        m = build_gate_dd(pkg, Gate("h", (0,)))
        plans.get(m)
        assert len(plans) == 1
        pkg.collect_garbage([m])
        # Same (still-live) root: the epoch bump must drop the cache and
        # force a recompile, because GC may have swept nodes whose ids the
        # memo keys by.
        plan = plans.get(m)
        assert plans.invalidations == 1
        assert plans.compiles == 2
        assert _task_ids(plan.row_tasks) == _task_ids(
            assign_tasks(pkg, m, 2)
        )

    def test_writers_cover_exactly_the_written_slices(self):
        n = 5
        threads = 4
        pkg = DDPackage(n)
        plans = _plan_cache(pkg, threads)
        h = (1 << n) // threads
        for m in _random_gates(pkg):
            plan = plans.get(m)
            expected = [set() for _ in range(threads)]
            direct_expected = [False] * threads
            for u, tasks in enumerate(plan.assignment.tasks):
                for (_, i_p, _), is_direct in zip(tasks, plan.direct[u]):
                    if is_direct:
                        direct_expected[i_p // h] = True
                    else:
                        expected[i_p // h].add(
                            plan.assignment.buffer_of[u]
                        )
            assert [sorted(ws) for ws in expected] == plan.writers
            assert direct_expected == plan.direct_out
            # Each output slice is produced exactly one way: direct tasks
            # imply no buffered writers for the same slice.
            for k in range(threads):
                if plan.direct_out[k]:
                    assert plan.writers[k] == []

    def test_direct_tasks_are_sole_writers_and_never_hit_sources(self):
        n = 5
        threads = 4
        pkg = DDPackage(n)
        plans = _plan_cache(pkg, threads)
        h = (1 << n) // threads
        saw_direct = False
        for m in _random_gates(pkg):
            plan = plans.get(m)
            slice_tasks = [0] * threads
            for tasks in plan.assignment.tasks:
                for _, i_p, _ in tasks:
                    slice_tasks[i_p // h] += 1
            for u, tasks in enumerate(plan.assignment.tasks):
                seen = set()
                for i, ((node, i_p, _), is_direct) in enumerate(
                    zip(tasks, plan.direct[u])
                ):
                    if is_direct:
                        saw_direct = True
                        assert slice_tasks[i_p // h] == 1
                        if id(node) not in seen:
                            # A direct miss must not be a hit source: no
                            # later task in this thread shares its node.
                            assert not any(
                                id(node2) == id(node)
                                for node2, _, _ in tasks[i + 1:]
                            )
                    seen.add(id(node))
        assert saw_direct


class TestPlannedExecution:
    """Planned kernels must be bit-identical to the legacy hot loop."""

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_planned_nocache_bit_identical(self, threads):
        n = 5
        pkg = DDPackage(n)
        plans = _plan_cache(pkg, threads)
        v = random_state(n, seed=threads)
        for m in _random_gates(pkg):
            legacy, _ = dmav_nocache(pkg, m, v, threads)
            dirty = np.full(1 << n, 99.0 + 9j)
            planned, _ = dmav_nocache(
                pkg, m, v, threads, out=dirty,
                tasks=plans.get(m).row_tasks, out_dirty=True,
            )
            assert np.array_equal(legacy, planned)

    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_planned_cached_bit_identical(self, threads):
        n = 5
        pkg = DDPackage(n)
        plans = _plan_cache(pkg, threads)
        arena = BufferArena(1 << n)
        v = random_state(n, seed=threads + 20)
        for m in _random_gates(pkg):
            plan = plans.get(m)
            legacy, s1 = dmav_cached(pkg, m, v, threads)
            out = np.full(1 << n, -7.0 + 3j)
            bufs = arena.partials(plan.assignment.num_buffers)
            planned, s2 = dmav_cached(
                pkg, m, v, threads, out=out,
                assignment=plan.assignment, buffers=bufs,
                writers=plan.writers, out_dirty=True,
                direct=plan.direct, direct_out=plan.direct_out,
            )
            assert np.array_equal(legacy, planned)
            assert s1.cache_hits == s2.cache_hits

    def test_dirty_buffers_never_leak_into_output(self):
        # Poison the arena pool, then run a gate whose writer lists leave
        # some buffer slices untouched: the result must still match.
        n = 5
        threads = 4
        pkg = DDPackage(n)
        plans = _plan_cache(pkg, threads)
        arena = BufferArena(1 << n)
        for buf in arena.partials(threads):
            buf.fill(1e9 + 1e9j)
        v = random_state(n, seed=13)
        m = build_gate_dd(pkg, Gate("cx", (0,), (n - 1,)))
        plan = plans.get(m)
        out = np.full(1 << n, 1e9 + 0j)
        bufs = arena.partials(plan.assignment.num_buffers)
        w, _ = dmav_cached(
            pkg, m, v, threads, out=out, assignment=plan.assignment,
            buffers=bufs, writers=plan.writers, out_dirty=True,
            direct=plan.direct, direct_out=plan.direct_out,
        )
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)

    def test_planned_cached_requires_writers(self):
        pkg = DDPackage(4)
        v = random_state(4, seed=1)
        m = single_qubit_gate(pkg, H, 0)
        with pytest.raises(ValueError):
            dmav_cached(
                pkg, m, v, 2, out=np.zeros_like(v),
                buffers=[np.zeros_like(v), np.zeros_like(v)],
            )

    def test_planned_cached_rejects_short_buffer_list(self):
        pkg = DDPackage(4)
        plans = _plan_cache(pkg, 2)
        v = random_state(4, seed=2)
        m = single_qubit_gate(pkg, H, 3)
        plan = plans.get(m)
        assert plan.assignment.num_buffers == 2
        with pytest.raises(ValueError):
            dmav_cached(
                pkg, m, v, 2, out=np.zeros_like(v),
                assignment=plan.assignment, buffers=[np.zeros_like(v)],
                writers=plan.writers,
            )


class TestBufferArena:
    def test_output_allocated_once_then_recycled(self):
        arena = BufferArena(8)
        first, dirty = arena.output()
        assert not dirty
        assert np.all(first == 0)
        consumed = np.arange(8, dtype=np.complex128)
        arena.retire(consumed)
        second, dirty = arena.output()
        assert dirty
        assert second is consumed
        assert arena.output_allocs == 1

    def test_retire_validates_shape(self):
        arena = BufferArena(8)
        with pytest.raises(ValueError):
            arena.retire(np.zeros(4, dtype=np.complex128))

    def test_partial_pool_grows_once_then_reuses(self):
        arena = BufferArena(8)
        first = arena.partials(2)
        assert arena.partial_allocs == 2 and arena.partial_reuses == 0
        again = arena.partials(2)
        assert [b is a for a, b in zip(first, again)] == [True, True]
        assert arena.partial_allocs == 2 and arena.partial_reuses == 2
        arena.partials(3)
        assert arena.partial_allocs == 3 and arena.partial_reuses == 4
        assert arena.partial_bytes == 3 * 8 * 16

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            BufferArena(0)


class TestGateSequences:
    def test_multi_gate_evolution_matches_reference(self):
        from repro.backends import StatevectorSimulator
        from repro.circuits import Circuit

        n = 5
        c = Circuit(n)
        c.h(0).cx(0, 1).rz(0.4, 2).swap(1, 3).ccx(0, 1, 4).h(4)
        ref = StatevectorSimulator().run(c).state

        pkg = DDPackage(n)
        v = np.zeros(1 << n, dtype=complex)
        v[0] = 1
        for gate in c.gates:
            m = build_gate_dd(pkg, gate)
            v, _ = dmav_cached(pkg, m, v, 2)
        np.testing.assert_allclose(v, ref, atol=1e-9)
