"""Unit tests for DMAV (Algorithms 1 and 2)."""

import math

import numpy as np
import pytest

from repro.backends.gatecache import build_gate_dd
from repro.circuits import Gate
from repro.core.cost_model import assign_cache_tasks
from repro.core.dmav import assign_tasks, dmav_cached, dmav_nocache
from repro.dd import DDPackage, matrix_to_dense, single_qubit_gate
from repro.dd.matrix import controlled_gate
from repro.parallel.partition import border_level
from repro.parallel.pool import TaskRunner
from repro.common.errors import ParallelError

from tests.conftest import random_state

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)
X = np.array([[0, 1], [1, 0]], dtype=complex)


def _random_gates(pkg, seed=0):
    """A spread of gate DDs covering 1q / controlled / low / high targets."""
    n = pkg.num_qubits
    gates = [
        Gate("h", (0,)),
        Gate("h", (n - 1,)),
        Gate("rz", (n // 2,), params=(0.7,)),
        Gate("cx", (0,), (n - 1,)),
        Gate("cx", (n - 1,), (0,)),
        Gate("swap", (0, n - 1)),
        Gate("ccx", (1,), (0, n - 1)) if n >= 3 else Gate("x", (0,)),
        Gate("cp", (n - 2,), (1,), params=(0.3,)) if n >= 3 else Gate("z", (0,)),
    ]
    return [build_gate_dd(pkg, g) for g in gates]


class TestAssign:
    def test_border_level_definition(self):
        assert border_level(10, 4) == 10 - 2 - 1

    def test_single_thread_gets_root(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 2)
        tasks = assign_tasks(pkg, m, 1)
        assert len(tasks) == 1
        assert len(tasks[0]) == 1
        node, i_v, coeff = tasks[0][0]
        assert node is m.n and i_v == 0 and coeff == m.w

    def test_threads_split_row_space(self):
        pkg = DDPackage(4)
        m = pkg.identity_edge(3)
        tasks = assign_tasks(pkg, m, 4)
        # Identity: each thread gets exactly its diagonal block, reading
        # the matching V block.
        for u, thread_tasks in enumerate(tasks):
            assert len(thread_tasks) == 1
            _, i_v, _ = thread_tasks[0]
            assert i_v == u * 4

    def test_h_on_top_qubit_gives_two_tasks_per_thread(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 3)
        tasks = assign_tasks(pkg, m, 2)
        # H's 2x2 block at the root is dense: each thread (row block)
        # multiplies both column blocks.
        assert [len(t) for t in tasks] == [2, 2]

    def test_invalid_thread_count_rejected(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 0)
        with pytest.raises(ParallelError):
            assign_tasks(pkg, m, 3)
        with pytest.raises(ParallelError):
            assign_tasks(pkg, m, 32)


class TestDMAVNoCache:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_matches_dense_for_gate_suite(self, threads):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=threads)
        for m in _random_gates(pkg):
            w, stats = dmav_nocache(pkg, m, v, threads)
            ref = matrix_to_dense(pkg, m) @ v
            np.testing.assert_allclose(w, ref, atol=1e-10)
            assert stats.threads == threads

    def test_out_buffer_reused_and_zeroed(self):
        pkg = DDPackage(4)
        v = random_state(4, seed=1)
        m = single_qubit_gate(pkg, H, 2)
        out = np.full(16, 99.0, dtype=complex)
        w, _ = dmav_nocache(pkg, m, v, 1, out=out)
        assert w is out
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)

    def test_aliased_output_rejected(self):
        pkg = DDPackage(3)
        v = random_state(3, seed=1)
        m = single_qubit_gate(pkg, H, 0)
        with pytest.raises(ValueError):
            dmav_nocache(pkg, m, v, 1, out=v)

    def test_wrong_state_length_rejected(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 0)
        with pytest.raises(ValueError):
            dmav_nocache(pkg, m, np.zeros(8, dtype=complex), 1)

    def test_thread_pool_execution(self):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=5)
        m = controlled_gate(pkg, X, (0,), (4,))
        with TaskRunner(4, use_pool=True) as runner:
            w, _ = dmav_nocache(pkg, m, v, 4, runner=runner)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)

    @pytest.mark.parametrize("dense_level", [-1, 0, 2, 8])
    def test_dense_level_sweep(self, dense_level):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=2)
        m = controlled_gate(pkg, H, (2,), (0, 4))
        w, _ = dmav_nocache(pkg, m, v, 2, dense_level=dense_level)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)


class TestDMAVCached:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_matches_dense_for_gate_suite(self, threads):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=threads + 10)
        for m in _random_gates(pkg):
            w, stats = dmav_cached(pkg, m, v, threads)
            ref = matrix_to_dense(pkg, m) @ v
            np.testing.assert_allclose(w, ref, atol=1e-10)
            assert stats.used_cache

    def test_cache_hits_on_shared_border_nodes(self):
        # H on the top qubit: both column tasks of a thread see the same
        # identity node below -> one real run + one scalar multiply.
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=3)
        m = single_qubit_gate(pkg, H, n - 1)
        w, stats = dmav_cached(pkg, m, v, 2)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)
        assert stats.cache_hits >= 1

    def test_buffer_sharing_on_disjoint_outputs(self):
        # Identity-like gates produce non-overlapping partial outputs, so
        # threads share one buffer (Algorithm 2 lines 22-25).
        n = 5
        pkg = DDPackage(n)
        m = pkg.identity_edge(n - 1)
        assignment = assign_cache_tasks(pkg, m, 4)
        assert assignment.num_buffers == 1

    def test_dense_gate_needs_multiple_buffers(self):
        n = 5
        pkg = DDPackage(n)
        m = single_qubit_gate(pkg, H, n - 1)
        assignment = assign_cache_tasks(pkg, m, 2)
        # Both threads write both halves: outputs overlap, buffers split.
        assert assignment.num_buffers == 2

    def test_precomputed_assignment_reused(self):
        n = 4
        pkg = DDPackage(n)
        v = random_state(n, seed=4)
        m = single_qubit_gate(pkg, H, 1)
        assignment = assign_cache_tasks(pkg, m, 2)
        w, _ = dmav_cached(pkg, m, v, 2, assignment=assignment)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)

    def test_cached_equals_uncached(self):
        n = 6
        pkg = DDPackage(n)
        v = random_state(n, seed=8)
        for m in _random_gates(pkg):
            w1, _ = dmav_nocache(pkg, m, v, 4)
            w2, _ = dmav_cached(pkg, m, v, 4)
            np.testing.assert_allclose(w1, w2, atol=1e-10)

    def test_thread_pool_execution(self):
        n = 5
        pkg = DDPackage(n)
        v = random_state(n, seed=6)
        m = single_qubit_gate(pkg, H, n - 1)
        with TaskRunner(4, use_pool=True) as runner:
            w, _ = dmav_cached(pkg, m, v, 4, runner=runner)
        np.testing.assert_allclose(w, matrix_to_dense(pkg, m) @ v, atol=1e-10)


class TestGateSequences:
    def test_multi_gate_evolution_matches_reference(self):
        from repro.backends import StatevectorSimulator
        from repro.circuits import Circuit

        n = 5
        c = Circuit(n)
        c.h(0).cx(0, 1).rz(0.4, 2).swap(1, 3).ccx(0, 1, 4).h(4)
        ref = StatevectorSimulator().run(c).state

        pkg = DDPackage(n)
        v = np.zeros(1 << n, dtype=complex)
        v[0] = 1
        for gate in c.gates:
            m = build_gate_dd(pkg, gate)
            v, _ = dmav_cached(pkg, m, v, 2)
        np.testing.assert_allclose(v, ref, atol=1e-9)
