"""Tests for dynamic circuits (mid-circuit measurement, classical control)."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, Gate
from repro.common.errors import CircuitError, SimulationError
from repro.dynamic import (
    Conditional,
    DynamicCircuit,
    Measure,
    run_dynamic,
    run_shots,
)


def teleportation_circuit(theta: float, lam: float) -> DynamicCircuit:
    """Teleport u3(theta, 0, lam)|0> from qubit 0 to qubit 2."""
    c = DynamicCircuit(3, num_clbits=2, name="teleport")
    c.add("u3", 0, params=(theta, 0.0, lam))
    c.add("h", 1)
    c.add("cx", 1, 2)
    c.add("cx", 0, 1)
    c.add("h", 0)
    c.measure(0, 0)
    c.measure(1, 1)
    c.c_if("x", 2, cbit=1)
    c.c_if("z", 2, cbit=0)
    return c


class TestConstruction:
    def test_builders_validate_ranges(self):
        c = DynamicCircuit(2, num_clbits=1)
        with pytest.raises(CircuitError):
            c.measure(5, 0)
        with pytest.raises(CircuitError):
            c.measure(0, 3)
        with pytest.raises(CircuitError):
            c.c_if("x", 0, cbit=2)

    def test_conditional_value_validated(self):
        with pytest.raises(CircuitError):
            Conditional(Gate("x", (0,)), cbit=0, value=2)

    def test_from_circuit(self):
        base = Circuit(2).h(0).cx(0, 1)
        dyn = DynamicCircuit.from_circuit(base, num_clbits=2)
        assert len(dyn) == 2
        assert dyn.num_clbits == 2

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            DynamicCircuit(0)


class TestExecution:
    def test_unitary_only_matches_static_simulation(self):
        from repro.backends import StatevectorSimulator

        base = Circuit(3).h(0).cx(0, 1).rz(0.4, 2).swap(0, 2)
        dyn = DynamicCircuit.from_circuit(base)
        shot = run_dynamic(dyn, np.random.default_rng(0))
        ref = StatevectorSimulator().run(base).state
        np.testing.assert_allclose(shot.state, ref, atol=1e-10)

    def test_measurement_collapses(self):
        c = DynamicCircuit(2, num_clbits=1)
        c.add("h", 0).add("cx", 0, 1).measure(0, 0)
        shot = run_dynamic(c, np.random.default_rng(1))
        m = shot.classical_bits[0]
        expected = np.zeros(4, dtype=complex)
        expected[0b11 if m else 0b00] = 1.0
        np.testing.assert_allclose(shot.state, expected, atol=1e-10)

    def test_initial_state_accepted(self):
        c = DynamicCircuit(1, num_clbits=1)
        c.measure(0, 0)
        init = np.array([0.0, 1.0], dtype=complex)
        shot = run_dynamic(c, np.random.default_rng(2), initial_state=init)
        assert shot.classical_bits == [1]

    def test_bad_initial_state_rejected(self):
        c = DynamicCircuit(2)
        with pytest.raises(SimulationError):
            run_dynamic(c, initial_state=np.ones(3, dtype=complex))

    def test_conditional_fires_only_on_match(self):
        c = DynamicCircuit(2, num_clbits=1)
        c.add("x", 0).measure(0, 0)      # bit = 1 deterministically
        c.c_if("x", 1, cbit=0, value=1)  # fires
        c.c_if("x", 0, cbit=0, value=0)  # does not fire
        shot = run_dynamic(c, np.random.default_rng(3))
        assert abs(shot.state[0b11]) == pytest.approx(1.0)


class TestTeleportation:
    @pytest.mark.parametrize(
        "theta,lam", [(0.0, 0.0), (math.pi / 3, 0.7), (2.1, -1.2)]
    )
    def test_payload_arrives_regardless_of_outcomes(self, theta, lam):
        expected = Gate("u3", (0,), params=(theta, 0.0, lam)).matrix() @ \
            np.array([1, 0], dtype=complex)
        rng = np.random.default_rng(5)
        seen_outcomes = set()
        for _ in range(12):
            shot = run_dynamic(teleportation_circuit(theta, lam), rng)
            seen_outcomes.add(tuple(shot.classical_bits))
            # Reduced state of qubit 2 (qubits 0, 1 are collapsed/pure).
            amp0 = shot.state[np.abs(shot.state) > 1e-12]
            # Extract qubit-2 amplitudes: the post-measurement state is
            # |m0 m1> (x) |psi>, so group by bit 2.
            psi2 = np.zeros(2, dtype=complex)
            for idx, a in enumerate(shot.state):
                if abs(a) > 1e-12:
                    psi2[(idx >> 2) & 1] += a
            fid = abs(np.vdot(expected, psi2)) ** 2
            assert fid == pytest.approx(1.0, abs=1e-9)
        assert len(seen_outcomes) > 1  # randomness actually exercised

    def test_outcome_distribution_uniform(self):
        counts = run_shots(teleportation_circuit(1.0, 0.5), 400, seed=7)
        assert set(counts) == {"00", "01", "10", "11"}
        for v in counts.values():
            assert v == pytest.approx(100, abs=40)


class TestShots:
    def test_counts_sum(self):
        c = DynamicCircuit(1, num_clbits=1)
        c.add("h", 0).measure(0, 0)
        counts = run_shots(c, 256, seed=9)
        assert sum(counts.values()) == 256
        assert set(counts) == {"0", "1"}

    def test_bits_string_ordering(self):
        c = DynamicCircuit(2, num_clbits=2)
        c.add("x", 0).measure(0, 0).measure(1, 1)
        shot = run_dynamic(c, np.random.default_rng(10))
        # cbit 0 = 1, cbit 1 = 0 -> "01" (highest bit leftmost).
        assert shot.bits_string == "01"

    def test_bad_shots_rejected(self):
        c = DynamicCircuit(1, num_clbits=1)
        with pytest.raises(SimulationError):
            run_shots(c, 0)
