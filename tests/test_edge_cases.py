"""Edge cases and stress scenarios across the whole stack."""

import numpy as np
import pytest

from repro import (
    DDSimulator,
    FlatDDSimulator,
    StatevectorSimulator,
    get_circuit,
)
from repro.backends import DDMatrixSimulator
from repro.circuits import Circuit, Gate
from repro.common.errors import ParallelError
from repro.core.conversion import convert_parallel
from repro.dd import DDPackage, vector_from_array


class TestEmptyAndTiny:
    def test_empty_circuit_all_backends(self):
        c = Circuit(3, name="empty")
        expected = np.zeros(8)
        expected[0] = 1
        for sim in (
            StatevectorSimulator(),
            DDSimulator(),
            FlatDDSimulator(threads=2),
            DDMatrixSimulator(),
        ):
            r = sim.run(c)
            np.testing.assert_allclose(r.state, expected, atol=1e-12)
            assert r.num_gates == 0

    def test_single_qubit_circuit_all_backends(self):
        c = Circuit(1).h(0).t(0).h(0)
        ref = StatevectorSimulator().run(c).state
        for sim in (DDSimulator(), FlatDDSimulator(threads=1),
                    DDMatrixSimulator()):
            r = sim.run(c)
            assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(
                1.0, abs=1e-10
            )

    def test_single_gate_identity(self):
        c = Circuit(2)
        c.add("id", 1)
        r = FlatDDSimulator(threads=2).run(c)
        assert abs(r.state[0]) == pytest.approx(1.0)

    def test_flatdd_one_qubit_requires_one_thread(self):
        c = Circuit(1).h(0)
        r = FlatDDSimulator(threads=1).run(c)
        assert np.allclose(np.abs(r.state), [2**-0.5, 2**-0.5])
        with pytest.raises(ParallelError):
            FlatDDSimulator(threads=2).run(c)


class TestBoundaryThreadCounts:
    def test_maximum_threads_for_size(self):
        # t = 2**(n-1) is the largest legal thread count.
        n = 4
        c = get_circuit("supremacy", n, cycles=6)
        ref = StatevectorSimulator().run(c).state
        r = FlatDDSimulator(threads=8).run(c)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(
            1.0, abs=1e-8
        )

    def test_conversion_with_more_threads_than_structure(self):
        # A 2-node DD split across 8 threads: most threads idle, still
        # correct.
        pkg = DDPackage(4)
        arr = np.zeros(16, dtype=complex)
        arr[0] = 1.0
        state = vector_from_array(pkg, arr)
        out, report = convert_parallel(pkg, state, threads=8)
        np.testing.assert_allclose(out, arr, atol=1e-12)


class TestRepeatedRuns:
    def test_simulator_instances_are_reusable(self):
        sim = FlatDDSimulator(threads=2)
        a = sim.run(get_circuit("ghz", 5))
        b = sim.run(get_circuit("qft", 5))
        c = sim.run(get_circuit("ghz", 5))
        assert a.fidelity(c) == pytest.approx(1.0, abs=1e-12)
        assert a.num_qubits == c.num_qubits == 5
        assert b.circuit_name == "qft_n5"

    def test_results_deterministic_across_runs(self):
        c = get_circuit("supremacy", 7, cycles=6)
        r1 = FlatDDSimulator(threads=2).run(c)
        r2 = FlatDDSimulator(threads=2).run(c)
        np.testing.assert_allclose(r1.state, r2.state, atol=0)
        assert (
            r1.metadata["conversion_gate_index"]
            == r2.metadata["conversion_gate_index"]
        )


class TestSimulatorEdges:
    def test_trigger_on_final_gate(self):
        # Conversion exactly at the last gate: DMAV phase is empty.
        c = get_circuit("dnn", 6, layers=3)
        flat = FlatDDSimulator(threads=2)
        full = flat.run(c)
        conv = full.metadata["conversion_gate_index"]
        truncated = c[: conv + 1]
        r = FlatDDSimulator(threads=2).run(truncated)
        assert r.metadata["converted"]
        assert all(
            g.phase != "dmav" for g in r.gate_trace
        )
        ref = StatevectorSimulator().run(truncated).state
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(
            1.0, abs=1e-8
        )

    def test_keep_internals_without_conversion(self):
        c = get_circuit("ghz", 6)
        r = FlatDDSimulator(threads=2).run(c, keep_internals=True)
        assert not r.metadata["converted"]
        assert "package" in r.metadata
        assert "dmav_edges" not in r.metadata

    def test_fusion_on_regular_circuit_is_noop(self):
        # Never converts -> fusion path never runs.
        c = get_circuit("adder", 8)
        r = FlatDDSimulator(threads=2, fusion="cost").run(c)
        assert "fusion_result" not in r.metadata

    def test_gate_on_highest_qubit_only(self):
        c = Circuit(6).h(5)
        for sim in (DDSimulator(), FlatDDSimulator(threads=2)):
            r = sim.run(c)
            assert abs(r.state[0]) == pytest.approx(2**-0.5)
            assert abs(r.state[32]) == pytest.approx(2**-0.5)


class TestNumericalCorners:
    def test_destructive_interference_collapses_dd(self):
        # H then H: amplitudes cancel back to |0>, DD returns to one chain.
        c = Circuit(5)
        for q in range(5):
            c.h(q)
        for q in range(5):
            c.h(q)
        r = DDSimulator().run(c)
        assert abs(r.state[0]) == pytest.approx(1.0, abs=1e-10)
        assert r.metadata["final_dd_size"] == 5

    def test_tiny_rotation_angles(self):
        c = Circuit(3).rz(1e-9, 0).ry(1e-9, 1).rx(1e-9, 2)
        r = FlatDDSimulator(threads=2).run(c)
        assert abs(r.state[0]) == pytest.approx(1.0, abs=1e-6)

    def test_angle_wraparound(self):
        import math

        a = Circuit(2).rz(0.3, 0)
        b = Circuit(2).rz(0.3 + 4 * math.pi, 0)
        ra = StatevectorSimulator().run(a)
        rb = StatevectorSimulator().run(b)
        assert ra.fidelity(rb) == pytest.approx(1.0, abs=1e-10)

    def test_global_phase_heavy_circuit(self):
        # Many rz gates accumulate pure phase on |0>: norm must hold.
        c = Circuit(2)
        for _ in range(50):
            c.rz(0.7, 0)
            c.rz(-0.3, 1)
        r = DDSimulator().run(c)
        assert np.linalg.norm(r.state) == pytest.approx(1.0, abs=1e-9)
