"""Unit tests for DD-based equivalence checking."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, Gate, get_circuit
from repro.common.errors import CircuitError
from repro.verify import (
    check_equivalence,
    check_equivalence_stimuli,
)

from tests.conftest import reference_state


def _ghz_variant_a(n: int) -> Circuit:
    return get_circuit("ghz", n)


def _ghz_variant_b(n: int) -> Circuit:
    # Fan-out from qubit 0 instead of a chain: same unitary action on |0..0>
    # but a *different* unitary -- useful as a near-miss.
    c = Circuit(n, name="ghz_fanout")
    c.h(0)
    for q in range(1, n):
        c.cx(0, q)
    return c


class TestExactEquivalence:
    @pytest.mark.parametrize("strategy", ["alternate", "naive"])
    def test_circuit_equals_itself(self, strategy):
        c = get_circuit("qft", 4)
        res = check_equivalence(c, c, strategy=strategy)
        assert res.equivalent
        assert res.phase == pytest.approx(1.0)

    @pytest.mark.parametrize("strategy", ["alternate", "naive"])
    def test_inverse_composition_is_identity(self, strategy):
        c = get_circuit("knn", 7)
        composed = Circuit(
            c.num_qubits, [*c.gates, *c.inverse().gates]
        )
        empty = Circuit(c.num_qubits, [Gate("id", (0,))])
        res = check_equivalence(composed, empty, strategy=strategy)
        assert res.equivalent

    def test_commuting_gates_reordered(self):
        a = Circuit(3).h(0).h(1).h(2).cz(0, 1)
        b = Circuit(3).h(2).h(1).h(0).cz(0, 1)
        assert check_equivalence(a, b).equivalent

    def test_hxh_equals_z(self):
        a = Circuit(1).h(0).x(0).h(0)
        b = Circuit(1).z(0)
        assert check_equivalence(a, b).equivalent

    def test_global_phase_reported(self):
        # X = i * rx(pi): equivalent up to phase i.
        a = Circuit(1).x(0)
        b = Circuit(1).rx(math.pi, 0)
        res = check_equivalence(a, b)
        assert res.equivalent
        assert res.phase == pytest.approx(1j)

    def test_different_unitaries_rejected(self):
        a = _ghz_variant_a(4)
        b = _ghz_variant_b(4)
        # Same action on |0...0> but different unitaries.
        np.testing.assert_allclose(
            reference_state(a), reference_state(b), atol=1e-10
        )
        assert not check_equivalence(a, b).equivalent

    def test_single_gate_difference_detected(self):
        a = get_circuit("qft", 4)
        b = Circuit(4, [*a.gates])
        b.t(2)
        assert not check_equivalence(a, b).equivalent

    def test_parameter_perturbation_detected(self):
        a = Circuit(2).rz(0.5, 0).cx(0, 1)
        b = Circuit(2).rz(0.5 + 1e-4, 0).cx(0, 1)
        assert not check_equivalence(a, b).equivalent

    def test_qubit_count_mismatch_rejected(self):
        with pytest.raises(CircuitError):
            check_equivalence(Circuit(2).h(0), Circuit(3).h(0))

    def test_unknown_strategy_rejected(self):
        c = Circuit(1).h(0)
        with pytest.raises(CircuitError):
            check_equivalence(c, c, strategy="magic")

    def test_alternate_keeps_miter_small_on_equal_circuits(self):
        c = get_circuit("dnn", 6, layers=3)
        alt = check_equivalence(c, c, strategy="alternate")
        naive = check_equivalence(c, c, strategy="naive")
        assert alt.equivalent and naive.equivalent
        # The alternating scheme's raison d'etre [11]: a smaller miter.
        assert alt.peak_nodes <= naive.peak_nodes

    def test_supremacy_gateset_invertible(self):
        c = get_circuit("supremacy", 6, cycles=4)
        res = check_equivalence(c, c)
        assert res.equivalent


class TestStimuliEquivalence:
    def test_equivalent_circuits_pass(self):
        a = Circuit(3).h(0).cx(0, 1).t(2)
        b = Circuit(3).t(2).h(0).cx(0, 1)
        res = check_equivalence_stimuli(a, b, num_stimuli=4)
        assert res.equivalent

    def test_global_phase_tolerated(self):
        a = Circuit(1).x(0)
        b = Circuit(1).rx(math.pi, 0)
        assert check_equivalence_stimuli(a, b, num_stimuli=4).equivalent

    def test_difference_detected(self):
        a = get_circuit("qft", 4)
        b = Circuit(4, [*a.gates]).t(1)
        res = check_equivalence_stimuli(a, b, num_stimuli=4)
        assert not res.equivalent

    def test_subtle_difference_detected(self):
        a = Circuit(3).h(0).cz(0, 2)
        b = Circuit(3).h(0).cz(0, 1)
        assert not check_equivalence_stimuli(a, b, num_stimuli=4).equivalent

    def test_agrees_with_exact_on_suite(self):
        for family, n in (("ghz", 5), ("qft", 4), ("adder", 6)):
            c = get_circuit(family, n)
            exact = check_equivalence(c, c)
            prob = check_equivalence_stimuli(c, c, num_stimuli=3)
            assert exact.equivalent == prob.equivalent is True
