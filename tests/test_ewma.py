"""Unit tests for the EWMA conversion monitor (Section 3.1.1)."""

import pytest

from repro.core.ewma import EWMAMonitor


class TestEquationFour:
    def test_recurrence_matches_paper(self):
        m = EWMAMonitor(beta=0.5, bias_correction=False, min_size=0)
        m.update(10)  # v1 = 0.5*0 + 0.5*10 = 5
        m.update(20)  # v2 = 0.5*5 + 0.5*20 = 12.5
        assert m.value == pytest.approx(12.5)

    def test_bias_correction_starts_at_first_sample(self):
        m = EWMAMonitor(beta=0.9)
        m.update(100)
        assert m.value == pytest.approx(100.0)

    def test_converges_to_constant_signal(self):
        m = EWMAMonitor(beta=0.9)
        for _ in range(200):
            m.update(50)
        assert m.value == pytest.approx(50.0, rel=1e-6)


class TestTrigger:
    def test_constant_dd_size_never_triggers(self):
        m = EWMAMonitor(beta=0.9, epsilon=2.0)
        assert not any(m.update(100) for _ in range(100))

    def test_linear_growth_never_triggers(self):
        # GHZ-like: s_i = 2i + 1 grows too slowly for epsilon = 2.
        m = EWMAMonitor(beta=0.9, epsilon=2.0)
        assert not any(m.update(2 * i + 1) for i in range(1, 200))

    def test_exponential_growth_triggers(self):
        # DNN-like DD blow-up: s doubles per gate.
        m = EWMAMonitor(beta=0.9, epsilon=2.0)
        fired = [m.update(2 ** i) for i in range(1, 15)]
        assert any(fired)

    def test_min_size_floor_suppresses_tiny_dds(self):
        m = EWMAMonitor(beta=0.9, epsilon=2.0, min_size=32)
        # Doubling but still microscopic: 1, 2, 4, 8, 16 never fire.
        assert not any(m.update(2 ** i) for i in range(5))

    def test_step_jump_triggers_immediately(self):
        m = EWMAMonitor(beta=0.9, epsilon=2.0, min_size=0)
        for _ in range(50):
            m.update(10)
        assert m.update(1000)

    def test_larger_epsilon_is_more_tolerant(self):
        def first_trigger(epsilon):
            m = EWMAMonitor(beta=0.9, epsilon=epsilon)
            for i in range(1, 30):
                if m.update(int(1.6 ** i) + 1):
                    return i
            return None

        tight = first_trigger(1.2)
        loose = first_trigger(4.0)
        assert tight is not None
        assert loose is None or loose >= tight


class TestBookkeeping:
    def test_samples_recorded(self):
        m = EWMAMonitor()
        m.update(5)
        m.update(7)
        assert len(m.samples) == 2
        assert m.samples[0].dd_size == 5
        assert m.samples[1].gate_index == 1

    def test_reset_clears_state(self):
        m = EWMAMonitor()
        m.update(500)
        m.reset()
        assert m.value == 0.0
        assert not m.samples

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            from repro.common.config import FlatDDConfig

            FlatDDConfig(beta=1.5)
        with pytest.raises(ValueError):
            from repro.common.config import FlatDDConfig

            FlatDDConfig(epsilon=0)
