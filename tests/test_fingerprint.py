"""Stability tests for the canonical ``Circuit.fingerprint()``.

The fingerprint is the content address behind the serving layer's result
cache, so two properties matter above all: *stability* (float formatting
noise, alias spellings, and irrelevant metadata never change the hash)
and *sensitivity* (anything that changes the simulated state does).
"""

import math

import pytest

from repro.circuits import Circuit, Gate, get_circuit, parse_qasm, to_qasm
from repro.circuits.circuit import FINGERPRINT_DECIMALS


def _bell() -> Circuit:
    return Circuit(2).h(0).cx(0, 1)


class TestStability:
    def test_deterministic_across_calls(self):
        c = get_circuit("supremacy", 6, cycles=6)
        assert c.fingerprint() == c.fingerprint()

    def test_equal_for_independent_builds(self):
        assert _bell().fingerprint() == _bell().fingerprint()

    def test_circuit_name_is_ignored(self):
        a = Circuit(2, name="alpha").h(0).cx(0, 1)
        b = Circuit(2, name="beta").h(0).cx(0, 1)
        assert a.fingerprint() == b.fingerprint()

    def test_builder_style_is_irrelevant(self):
        fluent = Circuit(3).h(0).rx(0.5, 1).ccx(0, 1, 2)
        explicit = Circuit(3)
        explicit.append(Gate("h", (0,)))
        explicit.append(Gate("rx", (1,), params=(0.5,)))
        explicit.append(Gate("ccx", (2,), controls=(0, 1)))
        assert fluent.fingerprint() == explicit.fingerprint()

    def test_controlled_aliases_hash_alike(self):
        a = Circuit(2).append(Gate("cx", (1,), (0,)))
        b = Circuit(2).append(Gate("cnot", (1,), (0,)))
        assert a.fingerprint() == b.fingerprint()

    def test_qasm_round_trip_preserves_fingerprint(self):
        c = get_circuit("qft", 5)
        back = parse_qasm(to_qasm(c))
        assert back.fingerprint() == c.fingerprint()


class TestFloatFormatting:
    def test_accumulated_float_noise_collapses(self):
        # 0.1 + 0.2 != 0.3 in binary, but the rounded canonical form
        # must agree -- this is exactly the duplicate-submission case
        # the result cache needs to merge.
        a = Circuit(1).rx(0.1 + 0.2, 0)
        b = Circuit(1).rx(0.3, 0)
        assert a.fingerprint() == b.fingerprint()

    def test_sub_rounding_perturbation_collapses(self):
        theta = math.pi / 7
        a = Circuit(1).rz(theta, 0)
        b = Circuit(1).rz(theta + 1e-14, 0)
        assert a.fingerprint() == b.fingerprint()

    def test_negative_zero_normalizes(self):
        a = Circuit(1).rz(0.0, 0)
        b = Circuit(1).rz(-0.0, 0)
        assert a.fingerprint() == b.fingerprint()

    def test_distinct_params_still_distinguish(self):
        eps = 10.0 ** (-FINGERPRINT_DECIMALS + 2)
        a = Circuit(1).rx(0.5, 0)
        b = Circuit(1).rx(0.5 + eps, 0)
        assert a.fingerprint() != b.fingerprint()

    def test_parameter_order_is_significant(self):
        # u3(theta, phi, lam) is not u3(phi, theta, lam): swapping the
        # parameter positions must change the hash.
        a = Circuit(1).add("u3", 0, params=(0.1, 0.2, 0.3))
        b = Circuit(1).add("u3", 0, params=(0.2, 0.1, 0.3))
        assert a.fingerprint() != b.fingerprint()


class TestParameterBinding:
    """``fingerprint(params=row)`` — the sweep-row content address.

    A sweep row must key caches exactly like the equivalent single-shot
    circuit, and inherit all the stability properties of the plain
    fingerprint (alias spellings, float formatting noise).
    """

    def _ansatz(self) -> Circuit:
        c = Circuit(2)
        c.h(0).h(1)
        c.ry(0.0, 0).ry(0.0, 1).cx(0, 1).rz(0.0, 1)
        return c

    def test_bound_variant_matches_explicit_bind(self):
        c = self._ansatz()
        row = (0.4, -1.2, 2.5)
        assert c.fingerprint(params=row) == c.bind(row).fingerprint()

    def test_distinct_rows_distinct_hashes(self):
        c = self._ansatz()
        a = c.fingerprint(params=(0.1, 0.2, 0.3))
        b = c.fingerprint(params=(0.1, 0.2, 0.4))
        assert a != b

    def test_bound_hash_differs_from_template_hash(self):
        c = self._ansatz()
        assert c.fingerprint(params=(1.0, 2.0, 3.0)) != c.fingerprint()

    def test_binding_does_not_mutate_template(self):
        c = self._ansatz()
        before = c.fingerprint()
        c.fingerprint(params=(0.7, 0.8, 0.9))
        assert c.fingerprint() == before

    def test_float_noise_collapses_through_binding(self):
        c = Circuit(1).rx(0.0, 0)
        assert c.fingerprint(params=(0.1 + 0.2,)) == c.fingerprint(
            params=(0.3,)
        )

    def test_negative_zero_normalizes_through_binding(self):
        c = Circuit(1).rz(1.0, 0)
        assert c.fingerprint(params=(0.0,)) == c.fingerprint(params=(-0.0,))

    def test_parameterized_aliases_hash_alike_when_bound(self):
        # cp and cu1 are spellings of the same controlled-phase gate.
        a = Circuit(2).append(Gate("cp", (1,), (0,), params=(0.0,)))
        b = Circuit(2).append(Gate("cu1", (1,), (0,), params=(0.0,)))
        row = (0.625,)
        assert a.fingerprint(params=row) == b.fingerprint(params=row)

    def test_identity_binding_matches_plain_fingerprint(self):
        # Re-binding a circuit's own parameters is a no-op for the hash.
        c = Circuit(2).ry(0.4, 0).rz(-0.9, 1)
        assert c.fingerprint(params=c.extract_params()) == c.fingerprint()


class TestSensitivity:
    def test_gate_order_matters(self):
        a = Circuit(2).h(0).x(1)
        b = Circuit(2).x(1).h(0)
        assert a.fingerprint() != b.fingerprint()

    def test_qubit_count_matters(self):
        a = Circuit(2).h(0)
        b = Circuit(3).h(0)
        assert a.fingerprint() != b.fingerprint()

    def test_targets_and_controls_matter(self):
        assert (
            Circuit(2).cx(0, 1).fingerprint()
            != Circuit(2).cx(1, 0).fingerprint()
        )

    def test_gate_identity_matters(self):
        assert Circuit(1).s(0).fingerprint() != Circuit(1).t(0).fingerprint()

    @pytest.mark.parametrize("family", ["ghz", "qft", "adder"])
    def test_distinct_families_distinct_hashes(self, family):
        others = {"ghz", "qft", "adder"} - {family}
        fp = get_circuit(family, 6).fingerprint()
        for other in others:
            assert fp != get_circuit(other, 6).fingerprint()

    def test_corpus_dedup_usage(self):
        # The standalone use case: deduplicating a generated corpus.
        circuits = [get_circuit("random", 5, gates=20, seed=s) for s in range(8)]
        circuits += [get_circuit("random", 5, gates=20, seed=s) for s in range(4)]
        unique = {c.fingerprint() for c in circuits}
        assert len(unique) == 8
