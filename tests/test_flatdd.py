"""Integration tests for the FlatDD simulator (Figure 3 pipeline)."""

import numpy as np
import pytest

from repro import FlatDDConfig, FlatDDSimulator
from repro.backends import DDSimulator, StatevectorSimulator
from repro.circuits import get_circuit
from repro.common.errors import ParallelError

from tests.conftest import reference_state


class TestCorrectness:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_agrees_with_reference(self, small_circuit, threads):
        ref = reference_state(small_circuit)
        r = FlatDDSimulator(threads=threads).run(small_circuit)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(1.0, abs=1e-8)

    @pytest.mark.parametrize("fusion", ["none", "cost", "koperations"])
    @pytest.mark.parametrize("policy", ["auto", "always", "never"])
    def test_config_matrix_on_irregular_circuit(self, fusion, policy):
        c = get_circuit("supremacy", 6, cycles=6)
        ref = reference_state(c)
        r = FlatDDSimulator(
            threads=4, fusion=fusion, cache_policy=policy
        ).run(c)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(1.0, abs=1e-8)

    def test_thread_pool_mode(self):
        c = get_circuit("dnn", 6, layers=3)
        ref = reference_state(c)
        r = FlatDDSimulator(threads=4, use_thread_pool=True).run(c)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(1.0, abs=1e-8)


class TestPhaseBehaviour:
    def test_regular_circuits_stay_in_dd_phase(self):
        # Table 1: FlatDD "does not switch from DDSIM to DMAV" on
        # Adder/GHZ.
        for family, n in (("ghz", 10), ("adder", 10)):
            r = FlatDDSimulator(threads=4).run(get_circuit(family, n))
            assert not r.metadata["converted"]
            assert all(g.phase == "dd" for g in r.gate_trace)

    def test_irregular_circuits_convert(self):
        for family, n in (("dnn", 8), ("supremacy", 8), ("vqe", 8)):
            r = FlatDDSimulator(threads=4).run(get_circuit(family, n))
            assert r.metadata["converted"]
            idx = r.metadata["conversion_gate_index"]
            assert 0 <= idx < len(r.gate_trace) + 1
            phases = [g.phase for g in r.gate_trace]
            assert "dd" in phases and "dmav" in phases

    def test_conversion_point_follows_dd_blowup(self):
        r = FlatDDSimulator(threads=2).run(get_circuit("dnn", 8))
        idx = r.metadata["conversion_gate_index"]
        sizes = [g.dd_size for g in r.gate_trace if g.phase == "dd"]
        # The DD at the trigger gate is markedly larger than the median of
        # the preceding history.
        assert sizes[-1] > 2 * float(np.median(sizes[:-1]))

    def test_epsilon_controls_eagerness(self):
        c = get_circuit("supremacy", 8)
        eager = FlatDDSimulator(threads=2, epsilon=1.1).run(c)
        lazy = FlatDDSimulator(threads=2, epsilon=6.0).run(c)
        e_idx = eager.metadata["conversion_gate_index"]
        l_idx = lazy.metadata["conversion_gate_index"]
        if l_idx is None:
            assert e_idx is not None
        else:
            assert e_idx <= l_idx

    def test_ewma_samples_recorded(self):
        r = FlatDDSimulator(threads=2).run(get_circuit("ghz", 6))
        samples = r.metadata["ewma_samples"]
        assert len(samples) == 6
        assert all(s.ewma > 0 for s in samples)


class TestInstrumentation:
    def test_dmav_gates_record_macs_and_policy(self):
        r = FlatDDSimulator(threads=2).run(get_circuit("dnn", 7))
        dmav = [g for g in r.gate_trace if g.phase == "dmav"]
        assert dmav
        assert all(g.macs is not None and g.macs > 0 for g in dmav)
        assert all(g.cached in (True, False) for g in dmav)

    def test_conversion_report_present(self):
        r = FlatDDSimulator(threads=4).run(get_circuit("dnn", 7))
        report = r.metadata["conversion_report"]
        assert report.threads == 4
        assert report.seconds > 0

    def test_fusion_metadata(self):
        r = FlatDDSimulator(threads=2, fusion="cost").run(
            get_circuit("dnn", 7)
        )
        summary = r.metadata["fusion_result"]
        assert summary["emitted_gates"] + summary["absorbed_gates"] == (
            len(r.gate_trace) - r.metadata["dd_phase_gates"]
            + summary["absorbed_gates"]
        )
        assert summary["ddmm_calls"] > 0

    def test_keep_internals_exposes_package(self):
        r = FlatDDSimulator(threads=2).run(
            get_circuit("dnn", 6), keep_internals=True
        )
        assert "package" in r.metadata
        assert "dmav_edges" in r.metadata

    def test_timeout(self):
        r = FlatDDSimulator(threads=1).run(
            get_circuit("dnn", 10), max_seconds=0.02
        )
        assert r.metadata["timed_out"]

    def test_memory_peak_includes_arrays_after_conversion(self):
        n = 10
        r = FlatDDSimulator(threads=2).run(get_circuit("supremacy", n))
        assert r.peak_memory_bytes >= 2 * (1 << n) * 16


class TestFusionEffect:
    def test_fusion_reduces_dmav_invocations(self):
        c = get_circuit("dnn", 8, layers=4)
        plain = FlatDDSimulator(threads=2).run(c)
        fused = FlatDDSimulator(threads=2, fusion="cost").run(c)
        n_plain = sum(1 for g in plain.gate_trace if g.phase == "dmav")
        n_fused = sum(1 for g in fused.gate_trace if g.phase == "dmav")
        assert n_fused < n_plain

    def test_fusion_reduces_total_macs(self):
        c = get_circuit("dnn", 8, layers=4)
        plain = FlatDDSimulator(threads=2).run(c)
        fused = FlatDDSimulator(threads=2, fusion="cost").run(c)
        assert (
            fused.metadata["dmav_macs_total"]
            < plain.metadata["dmav_macs_total"]
        )


class TestConfig:
    def test_config_object_and_overrides_exclusive(self):
        with pytest.raises(ValueError):
            FlatDDSimulator(FlatDDConfig(), threads=2)

    def test_invalid_threads_for_circuit(self):
        with pytest.raises(ParallelError):
            FlatDDSimulator(threads=16).run(get_circuit("ghz", 3))

    def test_defaults_match_paper(self):
        cfg = FlatDDConfig()
        assert cfg.beta == 0.9
        assert cfg.epsilon == 2.0


class TestPlanCachePipeline:
    """Simulator-level behaviour of the DMAV plan compiler + arena."""

    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_plan_on_off_bit_identical(self, threads):
        c = get_circuit("supremacy", 9)
        on = FlatDDSimulator(threads=threads, plan_cache=True).run(c)
        off = FlatDDSimulator(threads=threads, plan_cache=False).run(c)
        assert on.metadata["plan_cache"] is True
        assert off.metadata["plan_cache"] is False
        assert np.array_equal(on.state, off.state)

    def test_plan_counters_and_hit_rate(self):
        c = get_circuit("qft", 10)
        r = FlatDDSimulator(
            threads=4, force_convert_at=0, plan_cache=True
        ).run(c)
        counters = r.metadata["obs"]["counters"]
        hits = counters["dmav.plan.hits"]
        misses = counters["dmav.plan.misses"]
        assert hits > 0
        # The structural memo's task-weighted service rate: QFT repeats
        # no gate root, so anything >= 0.5 is pure sub-DD sharing.
        assert hits / (hits + misses) >= 0.5
        assert counters["dmav.plan.compiles"] > 0
        assert counters["dmav.plan.invalidations"] == 0
        assert r.metadata["obs"]["gauges"]["dmav.arena.bytes"]["value"] > 0

    def test_arena_zero_allocations_after_warmup(self):
        # The pool's high-water mark is bounded by the partition width
        # (buffers <= threads), never by the gate count: after warm-up
        # every per-gate buffer request is a reuse.
        c = get_circuit("supremacy", 10)
        r = FlatDDSimulator(
            threads=4, cache_policy="always", force_convert_at=0,
            plan_cache=True,
        ).run(c)
        counters = r.metadata["obs"]["counters"]
        dmav_gates = counters["dmav.gates"]
        assert counters["dmav.arena.partial_allocs"] <= 4
        assert counters["dmav.arena.partial_reuses"] >= dmav_gates - 4
        assert counters["dmav.arena.output_allocs"] == 1

    def test_plan_off_emits_no_plan_counters(self):
        c = get_circuit("qft", 8)
        r = FlatDDSimulator(
            threads=2, force_convert_at=0, plan_cache=False
        ).run(c)
        assert "dmav.plan.hits" not in r.metadata["obs"]["counters"]

    def test_plan_cache_is_execution_only_in_digest(self):
        from repro.common.config import config_digest

        on = FlatDDConfig(threads=2, plan_cache=True)
        off = FlatDDConfig(threads=2, plan_cache=False)
        assert config_digest(on) == config_digest(off)
