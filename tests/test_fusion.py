"""Unit tests for gate fusion (Algorithm 3 and the k-operations baseline)."""

import math

import numpy as np
import pytest

from repro.backends.gatecache import build_gate_dd
from repro.circuits import Gate, get_circuit
from repro.core.cost_model import CostModel, mac_count
from repro.core.fusion import (
    fuse_cost_aware,
    fuse_k_operations,
    identity_levels,
)
from repro.dd import DDPackage, matrix_to_dense, mm_multiply, single_qubit_gate

H = np.array([[1, 1], [1, -1]]) / math.sqrt(2)


def product_of(pkg, edges):
    acc = pkg.identity_edge(pkg.num_qubits - 1)
    for e in edges:
        acc = mm_multiply(pkg, e, acc)
    return acc


def circuit_edges(pkg, circuit):
    return [build_gate_dd(pkg, g) for g in circuit.gates]


class TestIdentityLevels:
    def test_single_qubit_gate_active_level(self):
        pkg = DDPackage(5)
        e = single_qubit_gate(pkg, H, 2)
        assert identity_levels(pkg, e) == {2}

    def test_cx_spans_control_and_target(self):
        pkg = DDPackage(5)
        e = build_gate_dd(pkg, Gate("cx", (1,), (4,)))
        levels = identity_levels(pkg, e)
        assert 4 in levels and 1 in levels

    def test_identity_has_no_active_levels(self):
        pkg = DDPackage(4)
        assert identity_levels(pkg, pkg.identity_edge(3)) == set()


class TestCostAwareFusion:
    def test_operator_product_preserved(self):
        pkg = DDPackage(5)
        c = get_circuit("random", 5, gates=25, seed=2)
        edges = circuit_edges(pkg, c)
        fused = fuse_cost_aware(pkg, edges, CostModel(2))
        np.testing.assert_allclose(
            matrix_to_dense(pkg, product_of(pkg, fused.gates)),
            matrix_to_dense(pkg, product_of(pkg, edges)),
            atol=1e-9,
        )

    def test_group_sizes_partition_input(self):
        pkg = DDPackage(5)
        edges = circuit_edges(pkg, get_circuit("dnn", 5, layers=2))
        fused = fuse_cost_aware(pkg, edges, CostModel(2))
        assert sum(fused.group_sizes) == len(edges)
        assert len(fused.group_sizes) == len(fused.gates)

    def test_fusion_never_increases_total_cost(self):
        # Algorithm 3 fuses only when the fused cost beats sequential, so
        # the emitted sequence can never model worse than the input.
        pkg = DDPackage(6)
        model = CostModel(2)
        for family, kwargs in (("dnn", {"layers": 2}), ("supremacy", {}),
                               ("random", {"gates": 30})):
            c = get_circuit(family, 6, **kwargs)
            edges = circuit_edges(pkg, c)
            unfused_cost = sum(model.evaluate(pkg, e).cost for e in edges)
            fused = fuse_cost_aware(pkg, edges, model)
            assert fused.total_cost <= unfused_cost + 1e-9

    def test_commuting_diagonals_fuse_heavily(self):
        # rz gates on the same qubit all fuse into one diagonal.
        pkg = DDPackage(4)
        gates = [Gate("rz", (1,), params=(0.1 * k,)) for k in range(8)]
        edges = [build_gate_dd(pkg, g) for g in gates]
        fused = fuse_cost_aware(pkg, edges, CostModel(2))
        assert len(fused.gates) == 1
        assert fused.fused_away == 7

    def test_last_gate_not_dropped(self):
        pkg = DDPackage(3)
        edges = [
            build_gate_dd(pkg, Gate("h", (0,))),
            build_gate_dd(pkg, Gate("h", (2,))),
        ]
        fused = fuse_cost_aware(pkg, edges, CostModel(1))
        np.testing.assert_allclose(
            matrix_to_dense(pkg, product_of(pkg, fused.gates)),
            matrix_to_dense(pkg, product_of(pkg, edges)),
            atol=1e-10,
        )

    def test_empty_input(self):
        pkg = DDPackage(3)
        fused = fuse_cost_aware(pkg, [], CostModel(1))
        assert fused.gates == []
        assert fused.total_cost == 0


class TestKOperations:
    def test_operator_product_preserved(self):
        pkg = DDPackage(5)
        c = get_circuit("random", 5, gates=25, seed=3)
        edges = circuit_edges(pkg, c)
        fused = fuse_k_operations(pkg, edges, k=3)
        np.testing.assert_allclose(
            matrix_to_dense(pkg, product_of(pkg, fused.gates)),
            matrix_to_dense(pkg, product_of(pkg, edges)),
            atol=1e-9,
        )

    def test_groups_respect_qubit_budget(self):
        pkg = DDPackage(6)
        c = get_circuit("dnn", 6, layers=2)
        edges = circuit_edges(pkg, c)
        fused = fuse_k_operations(pkg, edges, k=2)
        for g in fused.gates:
            assert len(identity_levels(pkg, g)) <= 2

    def test_k1_never_fuses_multiqubit_span(self):
        pkg = DDPackage(4)
        edges = circuit_edges(pkg, get_circuit("ghz", 4))
        fused = fuse_k_operations(pkg, edges, k=1)
        # cx spans two qubits, so only the leading H could group; every cx
        # stays alone.
        assert len(fused.gates) == len(edges)

    def test_bad_k_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(ValueError):
            fuse_k_operations(pkg, [], k=0)


class TestFusionComparison:
    def test_cost_aware_beats_koperations_in_model(self):
        # Table 2's claim: the DMAV-aware strategy yields lower modeled
        # cost than k-operations on deep irregular circuits.
        pkg = DDPackage(6)
        model = CostModel(4)
        c = get_circuit("dnn", 6, layers=3)
        edges = circuit_edges(pkg, c)
        ours = fuse_cost_aware(pkg, edges, model)
        theirs = fuse_k_operations(pkg, edges, k=4, model=model)
        assert ours.total_cost <= theirs.total_cost
