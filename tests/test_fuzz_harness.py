"""Tests for the differential/metamorphic fuzz harness itself.

The harness is correctness tooling, so these tests check both directions:
healthy code passes every oracle on seeded circuits, and a planted fault
is caught, shrunk to a minimal circuit, persisted, and replayable.
"""

import json
import os

import numpy as np
import pytest

from repro.circuits import Circuit, get_circuit, parse_qasm
from repro.common.config import FlatDDConfig
from repro.core import FlatDDSimulator
from repro.obs import Tracer
from repro.verify.fuzz import (
    FAULTS,
    ORACLES,
    REGIMES,
    FuzzSpec,
    generate_circuit,
    load_regression,
    phase_aligned_error,
    plant_fault,
    replay_regression,
    run_campaign,
    run_oracles,
    shrink_circuit,
    spec_for_iteration,
    write_regression,
)
from repro.circuits.qasm import to_qasm

pytestmark = pytest.mark.fuzz


class TestGenerator:
    def test_deterministic_from_spec(self):
        spec = FuzzSpec(regime="mixed", num_qubits=5, num_gates=40, seed=99)
        a = generate_circuit(spec)
        b = generate_circuit(spec)
        assert to_qasm(a) == to_qasm(b)

    @pytest.mark.parametrize("regime", [r for r in REGIMES if r != "generator"])
    def test_regime_respects_gate_pool(self, regime):
        clifford = {"h", "x", "y", "z", "s", "sdg", "cx", "cz", "swap"}
        pools = {
            "clifford": clifford,
            "clifford_t": clifford | {"t", "tdg"},
            "rotations": {"rx", "ry", "rz", "p", "cx", "cz", "cp", "rzz",
                          "rxx"},
            "mixed": clifford | {"t", "tdg", "sx", "rx", "ry", "rz", "p",
                                 "u2", "u3", "cp", "rzz"},
        }
        spec = FuzzSpec(regime=regime, num_qubits=4, num_gates=60, seed=5)
        c = generate_circuit(spec)
        assert len(c.gates) == 60
        assert {g.name for g in c.gates} <= pools[regime]

    def test_parameterized_gates_get_params(self):
        spec = FuzzSpec(regime="rotations", num_qubits=3, num_gates=50,
                        seed=1)
        c = generate_circuit(spec)
        for g in c.gates:
            if g.name in ("rx", "ry", "rz", "p", "cp", "rzz", "rxx"):
                assert len(g.params) == 1

    def test_generator_regime_uses_benchmark_families(self):
        names = set()
        for seed in range(12):
            spec = FuzzSpec(regime="generator", num_qubits=5, num_gates=30,
                            seed=seed)
            names.add(generate_circuit(spec).name.split("_")[1])
        assert len(names) >= 3  # several distinct families sampled

    def test_unknown_regime_rejected(self):
        from repro.common.errors import CircuitError

        with pytest.raises(CircuitError):
            generate_circuit(FuzzSpec(regime="nope"))

    def test_spec_for_iteration_deterministic_and_diverse(self):
        specs = [spec_for_iteration(7, i, max_qubits=6) for i in range(20)]
        again = [spec_for_iteration(7, i, max_qubits=6) for i in range(20)]
        assert specs == again
        assert len({s.regime for s in specs}) >= 3
        assert all(2 <= s.num_qubits <= 6 for s in specs)


class TestPhaseAlignedError:
    def test_global_phase_is_invisible(self, rng):
        v = rng.normal(size=8) + 1j * rng.normal(size=8)
        v /= np.linalg.norm(v)
        w = np.exp(1j * 1.234) * v
        assert phase_aligned_error(v, w) < 1e-12

    def test_real_difference_is_visible(self):
        v = np.zeros(4, dtype=complex)
        v[0] = 1.0
        w = np.zeros(4, dtype=complex)
        w[1] = 1.0
        assert phase_aligned_error(v, w) > 0.5

    def test_shape_mismatch_is_infinite(self):
        assert phase_aligned_error(np.ones(2), np.ones(4)) == float("inf")


class TestOracles:
    @pytest.mark.parametrize("family,n,kwargs", [
        ("ghz", 5, {}),
        ("qft", 4, {}),
        ("supremacy", 4, {"cycles": 4}),
        ("random", 4, {"gates": 25}),
    ], ids=["ghz", "qft", "supremacy", "random"])
    def test_all_oracles_pass_on_benchmarks(self, family, n, kwargs):
        outcomes = run_oracles(get_circuit(family, n, **kwargs))
        assert len(outcomes) == len(ORACLES)
        failed = [o.oracle for o in outcomes if not o.passed]
        assert not failed
        # Healthy code should hit the tightest tolerance tier throughout.
        assert all(o.tier == "tight" for o in outcomes if not o.skipped)

    def test_tiny_circuit_skips_multi_gate_oracles(self):
        c = Circuit(1).h(0)
        outcomes = {o.oracle: o for o in run_oracles(c)}
        assert outcomes["fusion_equivalence"].skipped
        assert outcomes["conversion_point_equivalence"].skipped
        assert outcomes["thread_invariance"].skipped
        assert outcomes["flatdd_vs_statevector"].passed

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError):
            run_oracles(Circuit(2).h(0), oracles=["nope"])

    def test_oracle_subset_runs_only_requested(self):
        outcomes = run_oracles(
            get_circuit("ghz", 4), oracles=["norm_preserved"]
        )
        assert [o.oracle for o in outcomes] == ["norm_preserved"]


class TestForcedConversion:
    """The core hook the conversion-point oracle depends on."""

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            FlatDDConfig(force_convert_at=-1)

    def test_forced_point_recorded_in_metadata(self):
        c = get_circuit("ghz", 4)
        r = FlatDDSimulator(FlatDDConfig(force_convert_at=1)).run(c)
        assert r.metadata["forced_conversion"] is True
        assert r.metadata["converted"] is True
        assert r.metadata["conversion_gate_index"] == 1

    def test_forcing_past_the_end_never_converts(self):
        c = get_circuit("ghz", 4)
        r = FlatDDSimulator(FlatDDConfig(force_convert_at=999)).run(c)
        assert r.metadata["converted"] is False

    def test_forced_and_ewma_states_agree(self):
        c = get_circuit("supremacy", 4, cycles=5)
        base = FlatDDSimulator().run(c).state
        for point in (0, len(c.gates) // 2, len(c.gates) - 1):
            forced = FlatDDSimulator(
                FlatDDConfig(force_convert_at=point)
            ).run(c).state
            assert phase_aligned_error(base, forced) < 1e-9


class TestShrinker:
    def test_minimizes_planted_gate_bug(self):
        # Predicate: "circuit still contains a t gate" -- a stand-in
        # oracle with a known minimal failure (exactly one gate).
        c = get_circuit("random", 5, gates=30, seed=8)
        c.t(2)

        def still_fails(cand):
            return any(g.name == "t" for g in cand.gates)

        shrunk = shrink_circuit(c, still_fails)
        assert len(shrunk.gates) == 1
        assert shrunk.gates[0].name == "t"
        assert shrunk.num_qubits == 1  # qubit removal compacted the wires

    def test_minimizes_real_oracle_violation(self):
        # Monkeypatched faulty T gate (DD paths only) + a real oracle: the
        # shrinker must reduce a 20+-gate circuit to the minimal h;t pair.
        c = get_circuit("random", 4, gates=20, seed=3)
        c.h(0)
        c.t(0)

        def still_fails(cand):
            with plant_fault("t-phase"):
                outs = run_oracles(
                    cand, oracles=["flatdd_vs_statevector"], threads=1
                )
            return any(not o.passed for o in outs)

        assert still_fails(c)
        shrunk = shrink_circuit(c, still_fails)
        assert len(shrunk.gates) <= 3
        assert any(g.name == "t" for g in shrunk.gates)

    def test_predicate_budget_respected(self):
        calls = 0

        def pred(cand):
            nonlocal calls
            calls += 1
            return True

        shrink_circuit(get_circuit("random", 4, gates=40), pred,
                       max_checks=25)
        assert calls <= 25


class TestFaults:
    def test_fault_registry_and_restoration(self):
        import repro.backends.gatecache as gatecache

        original = gatecache.build_gate_dd
        with plant_fault("t-phase"):
            assert gatecache.build_gate_dd is not original
        assert gatecache.build_gate_dd is original

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            with plant_fault("nope"):
                pass

    @pytest.mark.parametrize("fault", sorted(FAULTS))
    def test_each_fault_is_caught_by_some_oracle(self, fault):
        c = get_circuit("supremacy", 4, cycles=4)
        c.t(0)
        c.h(0)
        c.t(0)
        c.swap(0, 2)
        c.h(1)
        with plant_fault(fault):
            outcomes = run_oracles(c)
        assert any(not o.passed for o in outcomes), fault


class TestCampaign:
    def test_healthy_smoke_all_regimes(self):
        tracer = Tracer()
        result = run_campaign(
            seed=0, iterations=6, max_qubits=5, max_gates=30,
            out_dir=None, tracer=tracer,
        )
        assert result.iterations == 6
        assert result.ok
        assert result.oracle_runs["flatdd_vs_statevector"] == 6
        assert result.obs["counters"]["fuzz.iterations"] == 6
        assert result.obs["counters"]["fuzz.violations"] == 0
        # PR-1 obs payload: per-phase summary present when traced.
        assert any(
            p["name"] == "fuzz_iteration" for p in result.obs["summary"]
        )

    def test_campaign_deterministic(self):
        a = run_campaign(seed=5, iterations=4, out_dir=None)
        b = run_campaign(seed=5, iterations=4, out_dir=None)
        assert a.worst_tier == b.worst_tier
        assert a.oracle_runs == b.oracle_runs

    def test_budget_stops_early(self):
        result = run_campaign(
            seed=0, iterations=10_000, budget_seconds=0.5, out_dir=None
        )
        assert result.stopped_by_budget
        assert result.iterations < 10_000

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(iterations=1, regimes=("nope",))

    def test_planted_bug_end_to_end(self, tmp_path):
        out = str(tmp_path / "regressions")
        result = run_campaign(
            seed=0, iterations=12, plant_bug="t-phase", out_dir=out,
            oracles=["flatdd_vs_statevector"],
            regimes=("clifford_t",),
        )
        assert not result.ok
        v = result.violations[0]
        assert v.shrunk_gates <= 3  # minimal t-phase repro is h;t
        assert v.regression_path is not None and os.path.exists(
            v.regression_path
        )
        # The file replays: healthy code passes it...
        outcomes = replay_regression(v.regression_path)
        assert all(o.passed for o in outcomes)
        # ...and the recorded fault still reproduces the failure.
        circuit, meta = load_regression(v.regression_path)
        assert meta["plant_bug"] == "t-phase"
        with plant_fault("t-phase"):
            outcomes = run_oracles(circuit, oracles=[meta["oracle"]])
        assert any(not o.passed for o in outcomes)

    def test_json_summary_is_serializable(self):
        result = run_campaign(seed=1, iterations=2, out_dir=None)
        payload = json.loads(json.dumps(result.summary_dict()))
        assert payload["iterations"] == 2


class TestRegressionFiles:
    def test_write_load_roundtrip(self, tmp_path):
        c = get_circuit("ghz", 3)
        path = write_regression(
            c, "norm_preserved", directory=str(tmp_path),
            seed=1, spec={"regime": "mixed"}, note="test",
        )
        loaded, meta = load_regression(path)
        assert to_qasm(loaded) == to_qasm(c)
        assert meta["oracle"] == "norm_preserved"
        assert meta["seed"] == 1

    def test_write_is_idempotent(self, tmp_path):
        c = get_circuit("ghz", 3)
        p1 = write_regression(c, "norm_preserved", directory=str(tmp_path))
        p2 = write_regression(c, "norm_preserved", directory=str(tmp_path))
        assert p1 == p2
        assert len(list(tmp_path.iterdir())) == 1

    def test_non_regression_json_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_regression(str(bad))
