"""Replay every persisted fuzz regression against the current code.

Any JSON file landing in ``tests/data/fuzz_regressions/`` -- whether
hand-made or written by the shrinker during a fuzz campaign -- is
auto-collected here and re-run through the oracle it originally violated.
Dropping a shrunk failure into that directory *is* adding a regression
test; no code changes needed.
"""

import glob
import os

import pytest

from repro.verify.fuzz import load_regression, plant_fault, replay_regression
from repro.verify.fuzz.oracles import run_oracles

pytestmark = pytest.mark.fuzz

REGRESSION_DIR = os.path.join(
    os.path.dirname(__file__), "data", "fuzz_regressions"
)
REGRESSION_FILES = sorted(
    glob.glob(os.path.join(REGRESSION_DIR, "*.json"))
)


def test_corpus_is_seeded():
    """The directory ships with at least the two hand-made cases."""
    assert len(REGRESSION_FILES) >= 2


@pytest.mark.parametrize(
    "path", REGRESSION_FILES, ids=[os.path.basename(p) for p in REGRESSION_FILES]
)
def test_regression_replays_clean(path):
    """Current code must pass the oracle each persisted case violated.

    Files written by a ``--plant-bug`` demo campaign record the fault
    name; they too must pass *without* the fault installed (and the
    recorded fault must still reproduce, proving the file is not inert).
    """
    outcomes = replay_regression(path)
    failed = [o for o in outcomes if not o.passed]
    assert not failed, (
        f"{os.path.basename(path)} regressed: "
        + "; ".join(f"{o.oracle}: {o.detail} (err={o.max_error})"
                    for o in failed)
    )
    circuit, meta = load_regression(path)
    if meta.get("plant_bug"):
        with plant_fault(meta["plant_bug"]):
            refire = run_oracles(circuit, oracles=[meta["oracle"]])
        assert any(not o.passed for o in refire), (
            f"{os.path.basename(path)}: planted fault "
            f"{meta['plant_bug']!r} no longer reproduces -- the file is "
            "stale; regenerate it with `repro fuzz --plant-bug`"
        )
