"""Unit tests for the gate library."""

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    CONTROLLED_ALIASES,
    GATE_BUILDERS,
    Gate,
    gate_matrix,
    known_gates,
)
from repro.common.errors import CircuitError


class TestMatrices:
    @pytest.mark.parametrize("name", sorted(GATE_BUILDERS))
    def test_all_fixed_gates_are_unitary(self, name):
        ntargets, nparams, _ = GATE_BUILDERS[name]
        params = tuple(0.3 * (k + 1) for k in range(nparams))
        u = gate_matrix(name, params)
        dim = 1 << ntargets
        assert u.shape == (dim, dim)
        np.testing.assert_allclose(
            u @ u.conj().T, np.eye(dim), atol=1e-12
        )

    def test_hadamard_values(self):
        u = gate_matrix("h")
        s = 1 / math.sqrt(2)
        np.testing.assert_allclose(u, [[s, s], [s, -s]])

    def test_sqrt_gates_square_to_paulis(self):
        # sx^2 = X, sy^2 = Y (the supremacy one-qubit set).
        np.testing.assert_allclose(
            gate_matrix("sx") @ gate_matrix("sx"), gate_matrix("x"), atol=1e-12
        )
        np.testing.assert_allclose(
            gate_matrix("sy") @ gate_matrix("sy"), gate_matrix("y"), atol=1e-12
        )

    def test_sw_squares_to_w(self):
        w = (gate_matrix("x") + gate_matrix("y")) / math.sqrt(2)
        np.testing.assert_allclose(
            gate_matrix("sw") @ gate_matrix("sw"), w, atol=1e-12
        )

    def test_rotation_composition(self):
        np.testing.assert_allclose(
            gate_matrix("rz", (0.3,)) @ gate_matrix("rz", (0.4,)),
            gate_matrix("rz", (0.7,)),
            atol=1e-12,
        )

    def test_u3_generalizes_others(self):
        np.testing.assert_allclose(
            gate_matrix("u3", (0.0, 0.0, 0.5)),
            gate_matrix("p", (0.5,)) * np.exp(0j),
            atol=1e-12,
        )

    def test_controlled_alias_returns_base_matrix(self):
        np.testing.assert_allclose(gate_matrix("cx"), gate_matrix("x"))
        np.testing.assert_allclose(gate_matrix("ccx"), gate_matrix("x"))

    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError):
            gate_matrix("frobnicate")

    def test_wrong_param_count_rejected(self):
        with pytest.raises(CircuitError):
            gate_matrix("rz", ())
        with pytest.raises(CircuitError):
            gate_matrix("h", (1.0,))

    def test_fsim_special_cases(self):
        # fsim(0, 0) = I; fsim(pi/2, 0) = iSWAP up to sign convention.
        np.testing.assert_allclose(
            gate_matrix("fsim", (0.0, 0.0)), np.eye(4), atol=1e-12
        )
        f = gate_matrix("fsim", (math.pi / 2, 0.0))
        assert abs(f[1, 2]) == pytest.approx(1.0)
        assert f[1, 1] == pytest.approx(0.0, abs=1e-12)


class TestGateRecord:
    def test_alias_resolution(self):
        g = Gate("cx", targets=(1,), controls=(0,))
        assert g.base_name == "x"
        assert g.qubits == (0, 1)

    def test_signature_distinguishes_params(self):
        a = Gate("rz", (0,), params=(0.1,))
        b = Gate("rz", (0,), params=(0.2,))
        assert a.signature != b.signature

    def test_signature_shared_across_aliases(self):
        a = Gate("cx", targets=(1,), controls=(0,))
        b = Gate("cnot", targets=(1,), controls=(0,))
        assert a.signature == b.signature

    def test_duplicate_qubit_rejected(self):
        with pytest.raises(CircuitError):
            Gate("cx", targets=(0,), controls=(0,))

    def test_wrong_target_count_rejected(self):
        with pytest.raises(CircuitError):
            Gate("swap", targets=(0,))

    def test_negative_qubit_rejected(self):
        with pytest.raises(CircuitError):
            Gate("h", targets=(-1,))

    def test_is_diagonal(self):
        assert Gate("rz", (0,), params=(0.4,)).is_diagonal
        assert Gate("cz", (1,), (0,)).is_diagonal
        assert not Gate("h", (0,)).is_diagonal

    def test_str_rendering(self):
        g = Gate("cp", targets=(2,), controls=(0,), params=(0.5,))
        assert "cp" in str(g) and "0, 2" in str(g)

    def test_known_gates_covers_aliases(self):
        names = known_gates()
        assert "cx" in names and "h" in names and "ccx" in names
        assert all(
            alias in names for alias in CONTROLLED_ALIASES
        )
