"""Unit tests for the benchmark circuit generators.

Beyond structural checks, these verify the *semantic* property the paper
relies on: regular families keep tiny state DDs, irregular families blow
the DD up towards the 2**n - 1 worst case.
"""

import math

import numpy as np
import pytest

from repro.backends import DDSimulator
from repro.circuits import get_circuit
from repro.circuits.generators import CIRCUIT_FAMILIES
from repro.circuits.generators.irregular import _grid_couplings, _grid_shape
from repro.common.errors import CircuitError

from tests.conftest import reference_state


class TestGHZ:
    def test_state_is_ghz(self):
        c = get_circuit("ghz", 4)
        state = reference_state(c)
        expected = np.zeros(16)
        expected[0] = expected[15] = 1 / math.sqrt(2)
        np.testing.assert_allclose(state, expected, atol=1e-12)

    def test_gate_count_linear(self):
        assert len(get_circuit("ghz", 10)) == 10


class TestAdder:
    def test_addition_result(self):
        # n=8 -> k=3 bits: a=7, b=1 should give b=0, carry-out=1.
        c = get_circuit("adder", 8, a_value=0b111, b_value=0b001)
        state = reference_state(c)
        hot = int(np.argmax(np.abs(state)))
        assert abs(state[hot]) == pytest.approx(1.0)
        k = 3
        b_bits = [(hot >> (1 + 2 * i)) & 1 for i in range(k)]
        a_bits = [(hot >> (1 + 2 * i + 1)) & 1 for i in range(k)]
        cout = (hot >> 7) & 1
        b_out = sum(b << i for i, b in enumerate(b_bits)) + (cout << k)
        a_out = sum(a << i for i, a in enumerate(a_bits))
        assert a_out == 0b111  # a register restored
        assert b_out == 0b111 + 0b001

    @pytest.mark.parametrize("a,b", [(0, 0), (3, 4), (5, 5)])
    def test_sum_for_various_inputs(self, a, b):
        c = get_circuit("adder", 8, a_value=a, b_value=b)
        state = reference_state(c)
        hot = int(np.argmax(np.abs(state)))
        k = 3
        b_bits = sum(((hot >> (1 + 2 * i)) & 1) << i for i in range(k))
        cout = (hot >> 7) & 1
        assert b_bits + (cout << k) == a + b

    def test_odd_size_rejected(self):
        with pytest.raises(CircuitError):
            get_circuit("adder", 7)


class TestWState:
    def test_state_is_w(self):
        c = get_circuit("wstate", 4)
        state = reference_state(c)
        expected = np.zeros(16)
        for k in range(4):
            expected[1 << k] = 0.5
        np.testing.assert_allclose(np.abs(state), expected, atol=1e-9)


class TestQFT:
    def test_qft_of_zero_is_uniform(self):
        c = get_circuit("qft", 4)
        state = reference_state(c)
        np.testing.assert_allclose(state, np.full(16, 0.25), atol=1e-10)

    def test_qft_matches_dft_matrix(self):
        n = 3
        c = get_circuit("qft", n)
        # Column 0 is tested above; test another basis input by prepending X.
        from repro.circuits import Circuit

        pre = Circuit(n).x(0)
        full = Circuit(n, [*pre.gates, *c.gates])
        state = reference_state(full)
        # QFT with swaps maps |j> to (1/sqrt(N)) sum_k exp(2 pi i jk/N)|k>.
        N = 1 << n
        expected = np.exp(2j * math.pi * np.arange(N) / N) / math.sqrt(N)
        np.testing.assert_allclose(state, expected, atol=1e-9)

    def test_inverse_qft_composes_to_identity(self):
        from repro.circuits import Circuit

        n = 4
        f, b = get_circuit("qft", n), get_circuit("qft", n, inverse=True)
        # qft then iqft must restore |0>, but note swaps: iqft here is the
        # phase-inverted ladder, so compose b's gates reversed via inverse().
        full = Circuit(n, [*f.gates, *f.inverse().gates])
        state = reference_state(full)
        assert abs(state[0]) == pytest.approx(1.0, abs=1e-9)


class TestSwapKernels:
    def test_swaptest_ancilla_encodes_overlap(self):
        c = get_circuit("swaptest", 5, seed=3)
        state = reference_state(c)
        n = 5
        anc = n - 1
        p1 = sum(
            abs(state[i]) ** 2 for i in range(1 << n) if (i >> anc) & 1
        )
        # P(ancilla=1) = (1 - |<a|b>|^2) / 2 lies in [0, 1/2].
        assert 0.0 <= p1 <= 0.5 + 1e-9

    def test_knn_structure(self):
        c = get_circuit("knn", 9)
        names = [g.name for g in c]
        assert names.count("cswap") == 4
        assert names[-1] == "h"

    def test_even_qubits_rejected(self):
        with pytest.raises(CircuitError):
            get_circuit("swaptest", 6)
        with pytest.raises(CircuitError):
            get_circuit("knn", 8)


class TestSupremacy:
    def test_grid_shape_factorization(self):
        assert _grid_shape(12) == (3, 4)
        assert _grid_shape(16) == (4, 4)
        assert _grid_shape(7) == (1, 7)

    def test_couplings_within_bounds(self):
        for rows, cols in [(2, 3), (3, 4), (4, 4)]:
            n = rows * cols
            for pattern in _grid_couplings(rows, cols):
                for a, b in pattern:
                    assert 0 <= a < n and 0 <= b < n and a != b

    def test_no_repeated_single_qubit_gate_per_qubit(self):
        c = get_circuit("supremacy", 9, cycles=8, seed=1)
        last: dict[int, str] = {}
        for g in c.gates:
            if g.name in ("sx", "sy", "sw"):
                q = g.targets[0]
                assert last.get(q) != g.name
                last[q] = g.name

    def test_deterministic_for_seed(self):
        a = get_circuit("supremacy", 6, seed=5)
        b = get_circuit("supremacy", 6, seed=5)
        assert [g.signature for g in a] == [g.signature for g in b]

    def test_different_seeds_differ(self):
        a = get_circuit("supremacy", 6, seed=5)
        b = get_circuit("supremacy", 6, seed=6)
        assert [g.signature for g in a] != [g.signature for g in b]


class TestRegularityContrast:
    """The paper's Figure 1 premise, checked as a property of the suites."""

    def test_regular_families_keep_small_dds(self):
        for family in ("ghz", "adder"):
            c = get_circuit(family, 8)
            result = DDSimulator().run(c)
            assert max(g.dd_size for g in result.gate_trace) <= 4 * 8

    def test_irregular_families_blow_up_dds(self):
        n = 8
        for family, kwargs in (("dnn", {"layers": 4}), ("supremacy", {})):
            c = get_circuit(family, n, **kwargs)
            result = DDSimulator().run(c)
            assert max(g.dd_size for g in result.gate_trace) > (1 << n) / 2


class TestRegistry:
    def test_all_families_buildable(self):
        sizes = {"adder": 6, "swaptest": 5, "knn": 5}
        for family in CIRCUIT_FAMILIES:
            n = sizes.get(family, 4)
            c = get_circuit(family, n)
            assert len(c) > 0

    def test_unknown_family_rejected(self):
        with pytest.raises(CircuitError):
            get_circuit("nope", 4)
