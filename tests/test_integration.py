"""End-to-end integration tests: the paper's claims at test scale.

These are fast versions of the benchmark experiments, run in the unit
suite so regressions in any layer (DD, kernels, orchestrator, harness)
surface as test failures, not just as bench drift.
"""

import math

import numpy as np
import pytest

from repro import (
    DDSimulator,
    FlatDDSimulator,
    NoiseModel,
    StatevectorSimulator,
    check_equivalence,
    get_circuit,
    parse_qasm,
    run_trajectories,
    sample_counts,
    to_qasm,
)
from repro.circuits import Circuit
from repro.observables import transverse_field_ising
from repro.sampling import marginal_probabilities


class TestFullPipelineAgreement:
    """Every backend, every config, one full pass over the families."""

    FAMILIES = [
        ("ghz", 7, {}), ("adder", 8, {}), ("qft", 6, {}), ("wstate", 6, {}),
        ("dnn", 6, {"layers": 3}), ("vqe", 6, {}),
        ("supremacy", 8, {"cycles": 6}), ("knn", 7, {}), ("swaptest", 7, {}),
        ("grover", 5, {}), ("bv", 5, {}), ("dj", 5, {}), ("qpe", 4, {}),
        ("qvolume", 5, {"depth": 3}), ("hiddenshift", 6, {}),
        ("random", 6, {"gates": 40}),
    ]

    @pytest.mark.parametrize(
        "family,n,kwargs", FAMILIES, ids=[f[0] for f in FAMILIES]
    )
    def test_three_simulators_agree(self, family, n, kwargs):
        c = get_circuit(family, n, **kwargs)
        sv = StatevectorSimulator().run(c)
        dd = DDSimulator().run(c)
        flat = FlatDDSimulator(threads=2).run(c)
        assert dd.fidelity(sv) == pytest.approx(1.0, abs=1e-8)
        assert flat.fidelity(sv) == pytest.approx(1.0, abs=1e-8)
        assert np.linalg.norm(sv.state) == pytest.approx(1.0, abs=1e-9)


class TestPaperClaimsAtTestScale:
    def test_flatdd_beats_ddsim_on_irregular(self):
        c = get_circuit("dnn", 9, layers=4)
        flat = FlatDDSimulator(threads=2).run(c)
        dd = DDSimulator().run(c, max_seconds=30)
        assert flat.runtime_seconds < dd.runtime_seconds / 3

    def test_flatdd_matches_ddsim_mode_on_regular(self):
        c = get_circuit("adder", 10)
        flat = FlatDDSimulator(threads=2).run(c)
        assert not flat.metadata["converted"]
        # Memory identical regime: no flat arrays beyond the final export.
        dd = DDSimulator().run(c)
        assert flat.peak_memory_bytes <= 2 * dd.peak_memory_bytes

    def test_conversion_point_is_stable_across_thread_counts(self):
        c = get_circuit("supremacy", 8, cycles=8)
        indices = {
            FlatDDSimulator(threads=t).run(c).metadata[
                "conversion_gate_index"
            ]
            for t in (1, 2, 4)
        }
        assert len(indices) == 1  # the trigger is thread-independent

    def test_fusion_preserves_results_on_deep_circuit(self):
        c = get_circuit("dnn", 8, layers=8)
        base = FlatDDSimulator(threads=2).run(c)
        fused = FlatDDSimulator(threads=2, fusion="cost").run(c)
        assert fused.fidelity(base) == pytest.approx(1.0, abs=1e-8)
        assert (
            fused.metadata["dmav_macs_total"]
            <= base.metadata["dmav_macs_total"]
        )


class TestWorkflowScenarios:
    def test_qasm_to_sampled_counts(self):
        qasm = to_qasm(get_circuit("ghz", 6))
        circuit = parse_qasm(qasm)
        result = FlatDDSimulator(threads=2).run(circuit)
        counts = sample_counts(
            result.state, 1000, np.random.default_rng(0)
        )
        assert set(counts) == {"000000", "111111"}

    def test_vqe_energy_pipeline(self):
        n = 6
        ham = transverse_field_ising(n, j=1.0, h=0.5)
        circuit = get_circuit("vqe", n)
        result = FlatDDSimulator(threads=2).run(circuit)
        energy = ham.expectation(result.state).real
        # Any state's energy is bounded by the spectral range.
        assert -2 * n <= energy <= 2 * n

    def test_optimize_verify_simulate_loop(self):
        original = get_circuit("qft", 5)
        fused_run = FlatDDSimulator(threads=2, fusion="cost").run(original)
        plain_run = FlatDDSimulator(threads=2).run(original)
        assert fused_run.fidelity(plain_run) == pytest.approx(1.0, abs=1e-9)
        # And structural verification agrees circuits equal themselves.
        assert check_equivalence(original, original).equivalent

    def test_noisy_marginals_stay_normalized(self):
        c = get_circuit("ghz", 5)
        noisy = run_trajectories(
            c, NoiseModel(bit_flip=0.05), StatevectorSimulator(),
            num_trajectories=8, seed=2,
        )
        # Build a state-like vector from probabilities for the marginal
        # helper: use sqrt as amplitudes (valid distribution).
        pseudo = np.sqrt(noisy.probabilities).astype(complex)
        m = marginal_probabilities(pseudo, [0, 4])
        assert m.sum() == pytest.approx(1.0, abs=1e-9)

    def test_long_running_simulation_with_gc(self):
        # Force many GC cycles to shake out arena/cache invalidation bugs.
        sim = FlatDDSimulator(threads=2)
        sim.GC_THRESHOLD = 200
        c = get_circuit("dnn", 7, layers=6)
        ref = StatevectorSimulator().run(c)
        result = sim.run(c)
        assert result.fidelity(ref) == pytest.approx(1.0, abs=1e-8)

    def test_mixed_phase_memory_accounting(self):
        c = get_circuit("supremacy", 10, cycles=8)
        r = FlatDDSimulator(threads=2).run(c)
        # After conversion, peak memory covers at least two state arrays.
        assert r.peak_memory_bytes >= 2 * (1 << 10) * 16
        # And the trace phases partition the gate list.
        phases = [g.phase for g in r.gate_trace]
        first_dmav = phases.index("dmav")
        assert all(p == "dd" for p in phases[:first_dmav])
        assert all(p == "dmav" for p in phases[first_dmav:])
