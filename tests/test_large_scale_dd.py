"""Pure-DD simulation far beyond array reach (the paper's Figure 1 story).

A 2**64 amplitude vector is physically impossible; the DD for a 64-qubit GHZ
state is ~130 nodes.  These tests exercise ``DDSimulator(keep_dd=True)``
plus the DD-native query/sampling APIs at qubit counts where no other
backend in this library (or the paper's Quantum++) could run at all.
"""

import math

import numpy as np
import pytest

from repro.backends import DDSimulator
from repro.circuits import get_circuit
from repro.dd import amplitude, node_count
from repro.sampling import dd_outcome_probability, sample_from_dd

# Minutes-scale on CI hardware; run with `pytest -m slow`.
pytestmark = pytest.mark.slow


class TestLargeGHZ:
    @pytest.fixture(scope="class")
    def ghz64(self):
        result = DDSimulator().run(get_circuit("ghz", 64), keep_dd=True)
        return result, result.metadata["package"], result.metadata["state_dd"]

    def test_dd_stays_tiny(self, ghz64):
        result, _, state = ghz64
        assert node_count(state) == 2 * 64 - 1  # two branches per level
        assert result.peak_memory_mb < 10

    def test_amplitudes(self, ghz64):
        _, pkg, state = ghz64
        s = 1 / math.sqrt(2)
        assert abs(amplitude(pkg, state, 0)) == pytest.approx(s)
        assert abs(amplitude(pkg, state, (1 << 64) - 1)) == pytest.approx(s)
        assert amplitude(pkg, state, 12345) == 0

    def test_outcome_probabilities(self, ghz64):
        _, pkg, state = ghz64
        assert dd_outcome_probability(pkg, state, 0) == pytest.approx(0.5)
        assert dd_outcome_probability(
            pkg, state, (1 << 64) - 1
        ) == pytest.approx(0.5)

    def test_sampling(self, ghz64):
        _, pkg, state = ghz64
        counts = sample_from_dd(pkg, state, 200, np.random.default_rng(0))
        assert set(counts) == {"0" * 64, "1" * 64}

    def test_state_array_is_placeholder(self, ghz64):
        result, _, _ = ghz64
        assert result.state.size == 0


class TestLargeStructured:
    def test_40_qubit_adder(self):
        # 40-qubit ripple-carry adder: regular throughout, seconds in DD.
        result = DDSimulator().run(get_circuit("adder", 40), keep_dd=True)
        pkg = result.metadata["package"]
        state = result.metadata["state_dd"]
        assert not result.metadata["timed_out"]
        # The final state is a single computational basis state: verify the
        # adder's arithmetic at a scale arrays cannot reach (2**40 amps).
        counts = sample_from_dd(pkg, state, 10, np.random.default_rng(1))
        assert len(counts) == 1
        (bits,) = counts.keys()
        hot = int(bits, 2)
        assert abs(amplitude(pkg, state, hot)) == pytest.approx(1.0)
        k = (40 - 2) // 2  # 19-bit operands
        b_out = sum(((hot >> (1 + 2 * i)) & 1) << i for i in range(k))
        cout = (hot >> 39) & 1
        a_in = (1 << k) - 1  # generator defaults: a = all-ones, b = 1
        assert b_out + (cout << k) == a_in + 1

    def test_32_qubit_uniform_superposition(self):
        from repro.circuits import Circuit

        n = 32
        c = Circuit(n, name="uniform32")
        for q in range(n):
            c.h(q)
        result = DDSimulator().run(c, keep_dd=True)
        pkg = result.metadata["package"]
        state = result.metadata["state_dd"]
        assert node_count(state) == n  # a single chain
        for probe in (0, 1, 2**31, 2**32 - 1):
            assert abs(
                amplitude(pkg, state, probe)
            ) == pytest.approx(2 ** (-n / 2))

    def test_50_qubit_w_state_probabilities(self):
        n = 50
        result = DDSimulator().run(get_circuit("wstate", n), keep_dd=True)
        pkg = result.metadata["package"]
        state = result.metadata["state_dd"]
        # W state: probability 1/n on each single-excitation index.
        for k in (0, 17, n - 1):
            assert dd_outcome_probability(
                pkg, state, 1 << k
            ) == pytest.approx(1.0 / n, abs=1e-9)
        assert dd_outcome_probability(pkg, state, 0) == pytest.approx(
            0.0, abs=1e-9
        )
