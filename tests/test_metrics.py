"""Unit tests for metrics: memory model, timers, statistics."""

import math
import time

import numpy as np
import pytest

from repro.common.config import (
    AMPLITUDE_BYTES,
    CTABLE_ENTRY_BYTES,
    MNODE_BYTES,
    VNODE_BYTES,
)
from repro.dd import DDPackage, single_qubit_gate, vector_from_array
from repro.metrics import (
    MemoryMeter,
    Timer,
    array_bytes,
    dd_bytes,
    geometric_mean,
    normalize,
    ratio_string,
    speedups,
    state_array_bytes,
    timed,
)

from tests.conftest import random_state


class TestMemoryModel:
    def test_dd_bytes_counts_nodes_and_weights(self):
        pkg = DDPackage(4)
        base = dd_bytes(pkg)
        vector_from_array(pkg, random_state(4, seed=0))
        grown = dd_bytes(pkg)
        assert grown > base
        expected_v = pkg.vector_node_count * VNODE_BYTES
        expected_m = pkg.matrix_node_count * MNODE_BYTES
        expected_c = pkg.ctable.entry_count * CTABLE_ENTRY_BYTES
        assert grown == expected_v + expected_m + expected_c

    def test_matrix_nodes_priced_larger(self):
        pkg = DDPackage(4)
        before = dd_bytes(pkg)
        single_qubit_gate(pkg, np.array([[0, 1], [1, 0]]), 2)
        per_node = (dd_bytes(pkg) - before) / max(pkg.matrix_node_count, 1)
        assert per_node > 0
        assert MNODE_BYTES > VNODE_BYTES

    def test_array_bytes(self):
        a = np.zeros(8, dtype=np.complex128)
        assert array_bytes(a) == 8 * 16
        assert array_bytes(a, None, a) == 2 * 8 * 16

    def test_state_array_bytes(self):
        assert state_array_bytes(10) == (1 << 10) * AMPLITUDE_BYTES

    def test_meter_tracks_peak(self):
        meter = MemoryMeter(baseline=100)
        meter.sample(50)
        meter.sample(400)
        meter.sample(10)
        assert meter.peak_bytes == 500
        assert meter.last_bytes == 110
        assert meter.peak_mb == pytest.approx(500 / 2**20)


class TestTimer:
    def test_splits_accumulate(self):
        t = Timer()
        with t.split("a"):
            time.sleep(0.002)
        with t.split("a"):
            time.sleep(0.002)
        with t.split("b"):
            pass
        assert t.get("a") >= 0.004
        assert t.total >= t.get("a")

    def test_add_manual_split(self):
        t = Timer()
        t.add("x", 1.5)
        t.add("x", 0.5)
        assert t.get("x") == pytest.approx(2.0)

    def test_timed_contextmanager(self):
        with timed() as elapsed:
            time.sleep(0.002)
        final = elapsed()
        assert final >= 0.002
        # Frozen after exit.
        time.sleep(0.002)
        assert elapsed() == final


class TestStats:
    def test_geometric_mean_basic(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([7]) == pytest.approx(7.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_speedups(self):
        assert speedups([10, 4], [5, 8]) == [2.0, 0.5]
        with pytest.raises(ValueError):
            speedups([1], [1, 2])

    def test_normalize_default_reference(self):
        assert normalize([2.0, 4.0, 8.0]) == [1.0, 2.0, 4.0]

    def test_normalize_explicit_reference(self):
        assert normalize([3.0], reference=1.5) == [2.0]
        with pytest.raises(ValueError):
            normalize([1.0], reference=0.0)

    def test_ratio_string_matches_paper_format(self):
        assert ratio_string(34.814) == "34.81x"


class TestPackageStats:
    def test_counts_table_activity(self):
        from repro.dd.operations import mv_multiply

        pkg = DDPackage(3)
        state = vector_from_array(pkg, random_state(3, seed=1))
        x = single_qubit_gate(pkg, np.array([[0, 1], [1, 0]]), 0)
        assert pkg.stats.unique_misses > 0
        mv_multiply(pkg, x, state)
        assert pkg.stats.compute_misses > 0
        # Identical multiply hits the compute table.
        before = pkg.stats.compute_hits
        mv_multiply(pkg, x, state)
        assert pkg.stats.compute_hits > before

    def test_gc_counters(self):
        pkg = DDPackage(4)
        v = vector_from_array(pkg, random_state(4, seed=2))
        pkg.collect_garbage([v])
        assert pkg.stats.gc_runs == 1
        d = pkg.stats.as_dict()
        assert set(d) == {
            "unique_hits", "unique_misses", "compute_hits",
            "compute_misses", "gc_runs", "gc_nodes_reclaimed",
            "identity_mv_skips", "identity_mm_skips",
            "identity_passthrough_skips", "identity_lift_steps",
            "add_same_node",
        }


class TestObsRegistryIntegration:
    def test_snapshot_is_plain_data(self):
        import json

        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.25)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_gauge_tracks_extremes(self):
        from repro.obs import MetricsRegistry

        g = MetricsRegistry().gauge("x")
        for v in (4.0, -1.0, 9.0):
            g.set(v)
        assert (g.min, g.max, g.value) == (-1.0, 9.0, 9.0)
