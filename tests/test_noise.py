"""Unit tests for the stochastic Pauli noise layer."""

import numpy as np
import pytest

from repro.backends import StatevectorSimulator
from repro.circuits import Circuit, get_circuit
from repro.common.errors import SimulationError
from repro.core import FlatDDSimulator
from repro.noise import NoiseModel, run_trajectories


class TestNoiseModel:
    def test_trivial_model_inserts_nothing(self):
        model = NoiseModel()
        assert model.is_trivial
        c = get_circuit("ghz", 4)
        noisy = model.sample_circuit(c, np.random.default_rng(0))
        assert len(noisy) == len(c)

    def test_bad_probability_rejected(self):
        with pytest.raises(SimulationError):
            NoiseModel(depolarizing_1q=1.5)
        with pytest.raises(SimulationError):
            NoiseModel(bit_flip=-0.1)

    def test_error_rate_statistics(self):
        model = NoiseModel(depolarizing_1q=0.25)
        rng = np.random.default_rng(1)
        c = Circuit(1)
        for _ in range(400):
            c.h(0)
        noisy = model.sample_circuit(c, rng)
        inserted = len(noisy) - len(c)
        assert inserted / 400 == pytest.approx(0.25, abs=0.06)

    def test_two_qubit_rate_applied_per_touched_qubit(self):
        model = NoiseModel(depolarizing_2q=1.0)
        c = Circuit(2).cx(0, 1)
        noisy = model.sample_circuit(c, np.random.default_rng(2))
        # depolarizing with p=1 hits both qubits.
        assert len(noisy) == 1 + 2

    def test_inserted_gates_are_paulis(self):
        model = NoiseModel(depolarizing_1q=1.0, bit_flip=1.0, phase_flip=1.0)
        c = Circuit(2).h(0).h(1)
        noisy = model.sample_circuit(c, np.random.default_rng(3))
        extra = [g.name for g in noisy.gates if g.name != "h"]
        assert extra and set(extra) <= {"x", "y", "z"}

    def test_deterministic_under_seed(self):
        model = NoiseModel(depolarizing_1q=0.3)
        c = get_circuit("ghz", 4)
        a = model.sample_circuit(c, np.random.default_rng(7))
        b = model.sample_circuit(c, np.random.default_rng(7))
        assert [g.signature for g in a] == [g.signature for g in b]


class TestTrajectories:
    def test_no_noise_gives_unit_fidelity(self):
        c = get_circuit("ghz", 4)
        result = run_trajectories(
            c, NoiseModel(), StatevectorSimulator(), num_trajectories=3
        )
        assert result.mean_fidelity == pytest.approx(1.0, abs=1e-10)
        assert result.total_error_gates == 0

    def test_noise_reduces_fidelity(self):
        c = get_circuit("ghz", 5)
        result = run_trajectories(
            c,
            NoiseModel(depolarizing_1q=0.05, depolarizing_2q=0.1),
            StatevectorSimulator(),
            num_trajectories=24,
            seed=4,
        )
        assert result.mean_fidelity < 0.95
        assert result.total_error_gates > 0

    def test_probabilities_normalized(self):
        c = get_circuit("qft", 4)
        result = run_trajectories(
            c,
            NoiseModel(bit_flip=0.05),
            StatevectorSimulator(),
            num_trajectories=8,
            seed=5,
        )
        assert result.probabilities.sum() == pytest.approx(1.0, abs=1e-9)

    def test_ghz_bit_flips_leak_probability(self):
        c = get_circuit("ghz", 4)
        ideal = StatevectorSimulator().run(c).state
        result = run_trajectories(
            c,
            NoiseModel(bit_flip=0.1),
            StatevectorSimulator(),
            num_trajectories=32,
            seed=6,
            ideal_state=ideal,
        )
        ideal_support = np.abs(ideal) ** 2 > 1e-12
        leaked = result.probabilities[~ideal_support].sum()
        assert leaked > 0.05

    def test_more_noise_means_less_fidelity(self):
        c = get_circuit("ghz", 4)
        sim = StatevectorSimulator()
        ideal = sim.run(c).state
        light = run_trajectories(
            c, NoiseModel(bit_flip=0.02), sim, 24, seed=8, ideal_state=ideal
        )
        heavy = run_trajectories(
            c, NoiseModel(bit_flip=0.25), sim, 24, seed=8, ideal_state=ideal
        )
        assert heavy.mean_fidelity < light.mean_fidelity

    def test_works_with_flatdd_backend(self):
        c = get_circuit("supremacy", 6, cycles=5)
        result = run_trajectories(
            c,
            NoiseModel(depolarizing_2q=0.05),
            FlatDDSimulator(threads=2),
            num_trajectories=4,
            seed=9,
        )
        assert 0.0 <= result.mean_fidelity <= 1.0 + 1e-9
        assert result.probabilities.sum() == pytest.approx(1.0, abs=1e-9)

    def test_bad_trajectory_count_rejected(self):
        with pytest.raises(SimulationError):
            run_trajectories(
                get_circuit("ghz", 3), NoiseModel(), StatevectorSimulator(), 0
            )
