"""Tests for exact density-matrix noise simulation + trajectory agreement."""

import math

import numpy as np
import pytest

from repro.backends import StatevectorSimulator
from repro.circuits import Circuit, get_circuit
from repro.common.errors import SimulationError
from repro.noise import (
    DensityMatrixSimulator,
    NoiseModel,
    amplitude_damping_kraus,
    bit_flip_kraus,
    depolarizing_kraus,
    phase_flip_kraus,
    run_trajectories,
)


class TestKrausChannels:
    @pytest.mark.parametrize(
        "factory,p",
        [(depolarizing_kraus, 0.3), (bit_flip_kraus, 0.2),
         (phase_flip_kraus, 0.4), (amplitude_damping_kraus, 0.5)],
    )
    def test_completeness_relation(self, factory, p):
        total = sum(k.conj().T @ k for k in factory(p))
        np.testing.assert_allclose(total, np.eye(2), atol=1e-12)

    def test_bad_probability_rejected(self):
        with pytest.raises(SimulationError):
            depolarizing_kraus(1.4)

    def test_invalid_kraus_set_rejected(self):
        with pytest.raises(SimulationError):
            DensityMatrixSimulator([[np.eye(2) * 2.0]])


class TestDensityMatrixSimulator:
    def test_noiseless_matches_statevector(self):
        c = get_circuit("qft", 4)
        rho = DensityMatrixSimulator().run(c)
        psi = StatevectorSimulator().run(c).state
        np.testing.assert_allclose(rho, np.outer(psi, psi.conj()), atol=1e-9)

    def test_density_matrix_properties(self):
        c = get_circuit("supremacy", 4, cycles=4)
        sim = DensityMatrixSimulator([depolarizing_kraus(0.05)])
        rho = sim.run(c)
        assert np.trace(rho).real == pytest.approx(1.0, abs=1e-9)
        np.testing.assert_allclose(rho, rho.conj().T, atol=1e-10)
        eigs = np.linalg.eigvalsh(rho)
        assert eigs.min() > -1e-10

    def test_full_depolarizing_gives_maximally_mixed(self):
        c = Circuit(2).h(0).h(1)
        sim = DensityMatrixSimulator([depolarizing_kraus(0.75)])
        # p=0.75 single-qubit depolarizing is the fully randomizing channel.
        rho = sim.run(c)
        np.testing.assert_allclose(rho, np.eye(4) / 4, atol=1e-9)

    def test_amplitude_damping_relaxes_excited_state(self):
        c = Circuit(1).x(0)
        sim = DensityMatrixSimulator([amplitude_damping_kraus(0.4)])
        rho = sim.run(c)
        # After X then damping: P(1) = 1 - 0.4.
        assert rho[1, 1].real == pytest.approx(0.6)
        assert rho[0, 0].real == pytest.approx(0.4)

    def test_phase_flip_kills_coherence_not_populations(self):
        c = Circuit(1).h(0)
        sim = DensityMatrixSimulator([phase_flip_kraus(0.5)])
        rho = sim.run(c)
        # p=1/2 phase flip fully dephases.
        assert abs(rho[0, 1]) == pytest.approx(0.0, abs=1e-12)
        assert rho[0, 0].real == pytest.approx(0.5)

    def test_qubit_cap(self):
        sim = DensityMatrixSimulator()
        with pytest.raises(SimulationError):
            sim.run(get_circuit("ghz", 12))


class TestTrajectoryAgreement:
    """The Monte Carlo ensemble must converge to the exact channel."""

    @pytest.mark.parametrize(
        "model",
        [
            NoiseModel(bit_flip=0.1),
            NoiseModel(phase_flip=0.15),
            NoiseModel(depolarizing_1q=0.1),
        ],
        ids=["bitflip", "phaseflip", "depolarizing"],
    )
    def test_trajectories_converge_to_density_result(self, model):
        c = Circuit(3).h(0).h(1).h(2).cz(0, 1).cz(1, 2)
        # NOTE: channels apply per touched qubit after each gate in both
        # formulations, but the trajectory model uses its 2q rate on
        # 2q gates; this model has no 2q rate so the mapping is exact.
        exact = DensityMatrixSimulator.from_noise_model(model).probabilities(c)
        ensemble = run_trajectories(
            c, model, StatevectorSimulator(), num_trajectories=600, seed=11
        )
        np.testing.assert_allclose(
            ensemble.probabilities, exact, atol=0.05
        )

    def test_fidelity_matches_channel_prediction(self):
        # One gate + bit flip p: ensemble fidelity ~ 1 - p.
        c = Circuit(1).h(0)
        p = 0.2
        ensemble = run_trajectories(
            c, NoiseModel(bit_flip=p), StatevectorSimulator(),
            num_trajectories=800, seed=12,
        )
        # H|0> = |+> is X-invariant... use phase flip instead for a
        # discriminating check.
        c2 = Circuit(1).h(0)
        ensemble2 = run_trajectories(
            c2, NoiseModel(phase_flip=p), StatevectorSimulator(),
            num_trajectories=800, seed=13,
        )
        assert ensemble.mean_fidelity == pytest.approx(1.0, abs=1e-9)
        assert ensemble2.mean_fidelity == pytest.approx(1 - p, abs=0.04)
