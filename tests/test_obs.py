"""Tests for the observability layer: tracer, exporters, backend wiring."""

import json
import threading

import pytest

from repro import (
    DDSimulator,
    FlatDDSimulator,
    StatevectorSimulator,
    get_circuit,
)
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    build_obs,
    chrome_trace_events,
    format_summary_table,
    jsonl_events,
    summarize_phases,
    write_chrome_trace,
    write_jsonl,
)


class TestTracerBasics:
    def test_span_context_manager_records_interval(self):
        tr = Tracer()
        with tr.span("outer", category="phase", label=1):
            pass
        assert len(tr.spans) == 1
        span = tr.spans[0]
        assert span.name == "outer"
        assert span.category == "phase"
        assert span.duration >= 0
        assert span.args == {"label": 1}

    def test_nesting_depth(self):
        tr = Tracer()
        with tr.span("outer"):
            assert tr.current_depth == 1
            with tr.span("inner"):
                assert tr.current_depth == 2
        assert tr.current_depth == 0
        # Inner exits (and records) first.
        by_name = {s.name: s for s in tr.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].start >= by_name["outer"].start
        assert by_name["inner"].end <= by_name["outer"].end

    def test_record_rebases_to_epoch(self):
        import time

        tr = Tracer()
        t0 = time.perf_counter()
        t1 = t0 + 0.5
        tr.record("x", "cat", t0, t1, thread_id=7)
        span = tr.spans[0]
        assert span.duration == pytest.approx(0.5)
        assert span.start >= 0
        assert span.thread_id == 7

    def test_instants_and_samples(self):
        tr = Tracer()
        tr.instant("gc", "dd", reclaimed=10)
        tr.sample("dd_size", 42)
        assert tr.instants[0].args == {"reclaimed": 10}
        assert tr.samples[0].value == 42.0
        assert len(tr) == 2

    def test_exception_inside_span_still_records(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert len(tr.spans) == 1
        assert tr.current_depth == 0


class TestTracerThreadSafety:
    def test_concurrent_recording_loses_nothing(self):
        tr = Tracer()
        n_threads, per_thread = 8, 200

        def work(k):
            for i in range(per_thread):
                with tr.span(f"t{k}.{i}", category="work"):
                    pass
                tr.sample("x", i)

        threads = [
            threading.Thread(target=work, args=(k,)) for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr.spans) == n_threads * per_thread
        assert len(tr.samples) == n_threads * per_thread
        # Nesting depth is tracked per thread: all top-level.
        assert all(s.depth == 0 for s in tr.spans)


class TestNullTracer:
    def test_noop_records_nothing(self):
        before = (NULL_TRACER.spans, NULL_TRACER.instants, NULL_TRACER.samples)
        with NULL_TRACER.span("x", category="phase", arg=1):
            pass
        NULL_TRACER.record("y", "c", 0.0, 1.0)
        NULL_TRACER.instant("z")
        NULL_TRACER.sample("w", 3)
        assert NULL_TRACER.spans == before[0] == ()
        assert NULL_TRACER.instants == before[1] == ()
        assert NULL_TRACER.samples == before[2] == ()
        assert not NULL_TRACER.enabled
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.wall_seconds() == 0.0

    def test_untraced_run_attaches_no_spans(self):
        result = FlatDDSimulator(threads=2).run(get_circuit("supremacy", 8))
        obs = result.metadata["obs"]
        assert "spans" not in obs and "summary" not in obs
        assert obs["counters"]  # counters are always collected


class TestRegistry:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        reg.gauge("g").set(2.0)
        reg.gauge("g").set(5.0)
        reg.gauge("g").set(3.0)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 5
        g = snap["gauges"]["g"]
        assert (g["value"], g["min"], g["max"], g["updates"]) == (3.0, 2.0, 5.0, 3)

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)


class TestChromeExport:
    @pytest.fixture(scope="class")
    def traced_run(self):
        tracer = Tracer()
        result = FlatDDSimulator(threads=4).run(
            get_circuit("supremacy", 10), tracer=tracer
        )
        return tracer, result

    def test_events_roundtrip_json_with_required_fields(self, traced_run):
        tracer, _ = traced_run
        events = json.loads(json.dumps(chrome_trace_events(tracer)))
        assert events
        for event in events:
            assert event["ph"] in ("X", "i", "C", "M")
            assert isinstance(event["ts"], (int, float))
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        complete = [e for e in events if e["ph"] == "X"]
        assert all("dur" in e for e in complete)

    def test_phase_spans_present(self, traced_run):
        tracer, result = traced_run
        names = {e["name"] for e in chrome_trace_events(tracer)}
        assert {"dd_phase", "conversion", "dmav_phase"} <= names
        assert result.metadata["converted"]

    def test_counter_samples_exported(self, traced_run):
        tracer, _ = traced_run
        counters = [
            e for e in chrome_trace_events(tracer) if e["ph"] == "C"
        ]
        assert {e["name"] for e in counters} >= {"dd_size", "ewma"}

    def test_write_chrome_trace_file(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tracer)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count

    def test_jsonl_export(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "events.jsonl"
        count = write_jsonl(str(path), tracer)
        lines = path.read_text().splitlines()
        assert len(lines) == count == len(jsonl_events(tracer))
        types = {json.loads(line)["type"] for line in lines}
        assert "span" in types and "sample" in types


class TestSummary:
    def test_phases_ordered_and_attributed(self):
        tr = Tracer()
        tr.record("phase_a", "phase", 0.0 + tr.epoch, 1.0 + tr.epoch)
        tr.record("phase_b", "phase", 1.0 + tr.epoch, 1.5 + tr.epoch)
        tr.record("g1", "dd", 0.1 + tr.epoch, 0.2 + tr.epoch)
        tr.record("g2", "dd", 0.3 + tr.epoch, 0.4 + tr.epoch)
        tr.record("g3", "dmav", 1.1 + tr.epoch, 1.2 + tr.epoch)
        phases = summarize_phases(tr)
        assert [p.name for p in phases] == ["phase_a", "phase_b"]
        assert phases[0].inner_spans == 2
        assert phases[1].inner_spans == 1
        assert phases[0].seconds == pytest.approx(1.0)
        assert phases[0].share == pytest.approx(1.0 / 1.5)

    def test_table_renders(self):
        tr = Tracer()
        tr.record("only", "phase", tr.epoch, tr.epoch + 2.0)
        table = format_summary_table(tr, wall_seconds=4.0)
        assert "only" in table and "50.0" in table
        assert format_summary_table(Tracer()) == "(no phase spans recorded)"


class TestBackendObsMetadata:
    @pytest.mark.parametrize("backend", ["flatdd", "ddsim", "quantumpp"])
    def test_counters_in_metadata(self, backend):
        circuit = get_circuit("supremacy", 8)
        sim = {
            "flatdd": lambda: FlatDDSimulator(threads=2),
            "ddsim": lambda: DDSimulator(),
            "quantumpp": lambda: StatevectorSimulator(threads=2),
        }[backend]()
        result = sim.run(circuit)
        obs = result.metadata["obs"]
        assert obs["counters"], backend
        json.dumps(obs)  # must stay JSON-serializable
        if backend in ("flatdd", "ddsim"):
            assert obs["counters"]["dd.unique_misses"] > 0
            assert obs["counters"]["gate_cache.misses"] > 0
            assert result.metadata["dd_stats"]["unique_misses"] > 0
            assert result.metadata["gate_dd_cache_hits"] >= 0

    def test_traced_flatdd_has_summary_and_ewma(self):
        tracer = Tracer()
        result = FlatDDSimulator(threads=2).run(
            get_circuit("supremacy", 8), tracer=tracer
        )
        obs = result.metadata["obs"]
        assert {p["name"] for p in obs["summary"]} >= {"dd_phase", "conversion"}
        dd_spans = [s for s in obs["spans"] if s["cat"] == "dd"]
        assert all("ewma" in s["args"] for s in dd_spans)
        assert obs["gauges"]["ewma"]["value"] > 0

    def test_dd_package_stats_count_hits(self):
        # Repeated gates guarantee unique- and compute-table hits.
        result = DDSimulator().run(get_circuit("ghz", 6))
        counters = result.metadata["obs"]["counters"]
        assert counters["dd.compute_misses"] > 0
        assert counters["dd.unique_hits"] + counters["dd.unique_misses"] > 0

    def test_build_obs_pool_section(self):
        from repro.parallel.pool import TaskRunner

        tr = Tracer()
        with TaskRunner(2, use_pool=True, tracer=tr) as runner:
            runner.run([lambda: 1, lambda: 2])
        obs = build_obs(tracer=tr, runner=runner, wall_seconds=1.0)
        assert obs["pool"]["batches"] == 1
        assert sum(obs["pool"]["tasks"]) == 2
        assert len([s for s in tr.spans if s.category == "pool"]) == 2


class TestCLITraceProfile:
    def test_simulate_trace_and_profile(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.json"
        assert main(
            ["simulate", "--family", "supremacy", "--qubits", "10",
             "--backend", "flatdd", "--trace", str(path), "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "dd_phase" in out
        payload = json.loads(path.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"dd_phase", "conversion", "dmav_phase"} <= names

    def test_compare_profile(self, capsys):
        from repro.cli import main

        assert main(
            ["compare", "--family", "ghz", "--qubits", "4", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "-- ddsim --" in out and "dd_phase" in out

    def test_verbose_flag_logs_to_stderr(self, capsys):
        from repro.cli import main

        assert main(
            ["-v", "simulate", "--family", "ghz", "--qubits", "3"]
        ) == 0
        err = capsys.readouterr().err
        assert "INFO" in err and "repro" in err

    def test_quiet_by_default(self, capsys):
        from repro.cli import main

        assert main(["simulate", "--family", "ghz", "--qubits", "3"]) == 0
        assert "INFO" not in capsys.readouterr().err
