"""Unit tests for Pauli observables and model Hamiltonians."""

import numpy as np
import pytest

from repro.common.errors import CircuitError
from repro.observables import (
    PauliString,
    PauliSum,
    heisenberg_xxz,
    maxcut,
    transverse_field_ising,
)

from tests.conftest import random_state

X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]])
Z = np.diag([1, -1]).astype(complex)
I2 = np.eye(2, dtype=complex)
_OPS = {"X": X, "Y": Y, "Z": Z, "I": I2}


def dense(p: PauliString, n: int) -> np.ndarray:
    out = np.array([[1]], dtype=complex)
    label = p.label(n)
    for ch in label:
        out = np.kron(out, _OPS[ch])
    return p.coefficient * out


class TestPauliString:
    def test_from_label_ordering(self):
        p = PauliString.from_label("ZXI")
        assert dict(p.paulis) == {2: "Z", 1: "X"}

    def test_label_roundtrip(self):
        p = PauliString(((0, "Y"), (3, "Z")), 2.0)
        assert p.label(4) == "ZIIY"
        assert PauliString.from_label(p.label(4), 2.0) == p

    @pytest.mark.parametrize("label", ["X", "Y", "Z", "XY", "ZZ", "YXZ", "IXI"])
    def test_apply_matches_dense(self, label):
        n = len(label)
        state = random_state(n, seed=hash(label) % 1000)
        p = PauliString.from_label(label, coefficient=1.5 - 0.5j)
        np.testing.assert_allclose(
            p.apply(state), dense(p, n) @ state, atol=1e-12
        )

    @pytest.mark.parametrize("label", ["X", "ZZ", "YY", "XYZ", "IZY"])
    def test_expectation_matches_dense(self, label):
        n = len(label)
        state = random_state(n, seed=len(label))
        p = PauliString.from_label(label)
        expected = np.vdot(state, dense(p, n) @ state)
        assert p.expectation(state) == pytest.approx(expected, abs=1e-12)

    def test_pauli_is_involutive(self):
        state = random_state(3, seed=4)
        p = PauliString.from_label("XYZ")
        np.testing.assert_allclose(p.apply(p.apply(state)), state, atol=1e-12)

    def test_z_expectation_on_basis_states(self):
        zero = np.zeros(4, dtype=complex)
        zero[0] = 1
        assert PauliString.z(0).expectation(zero) == pytest.approx(1.0)
        one = np.zeros(4, dtype=complex)
        one[1] = 1
        assert PauliString.z(0).expectation(one) == pytest.approx(-1.0)

    def test_scalar_multiplication(self):
        p = 3.0 * PauliString.x(0)
        assert p.coefficient == 3.0
        assert (-p).coefficient == -3.0

    def test_validation(self):
        with pytest.raises(CircuitError):
            PauliString(((0, "Q"),))
        with pytest.raises(CircuitError):
            PauliString(((0, "X"), (0, "Z")))
        with pytest.raises(CircuitError):
            PauliString.from_label("AB")
        with pytest.raises(CircuitError):
            PauliString.x(5).expectation(np.ones(4) / 2)

    def test_identity_string(self):
        p = PauliString.identity(2.5)
        state = random_state(2, seed=1)
        assert p.expectation(state) == pytest.approx(2.5)


class TestPauliSum:
    def test_sum_expectation_is_linear(self):
        state = random_state(3, seed=9)
        a, b = PauliString.z(0, 0.5), PauliString.x(2, -1.5)
        total = (a + b).expectation(state)
        assert total == pytest.approx(
            a.expectation(state) + b.expectation(state)
        )

    def test_simplify_merges_and_drops(self):
        s = PauliString.z(0) + PauliString.z(0) + PauliString.x(1, 0.0)
        simplified = s.simplify()
        assert len(simplified) == 1
        assert simplified.terms[0].coefficient == pytest.approx(2.0)

    def test_scalar_multiplication(self):
        s = 2.0 * (PauliString.z(0) + PauliString.x(1))
        assert all(t.coefficient == 2.0 for t in s.terms)

    def test_variance_zero_on_eigenstate(self):
        # |00> is an eigenstate of Z0 + Z1.
        state = np.zeros(4, dtype=complex)
        state[0] = 1
        h = PauliString.z(0) + PauliString.z(1)
        assert h.variance(state) == pytest.approx(0.0, abs=1e-12)

    def test_variance_positive_off_eigenstate(self):
        state = np.full(4, 0.5, dtype=complex)
        h = PauliSum([PauliString.z(0)])
        assert h.variance(state) == pytest.approx(1.0)


class TestHamiltonians:
    def _dense_sum(self, h: PauliSum, n: int) -> np.ndarray:
        return sum(dense(t, n) for t in h)

    def test_ising_ground_energy_matches_dense(self):
        n = 4
        h = transverse_field_ising(n, j=1.0, h=0.5)
        mat = self._dense_sum(h, n)
        state = random_state(n, seed=3)
        assert h.expectation(state) == pytest.approx(
            np.vdot(state, mat @ state), abs=1e-10
        )

    def test_ising_open_vs_periodic_term_count(self):
        assert len(transverse_field_ising(4, periodic=True)) == 8
        assert len(transverse_field_ising(4, periodic=False)) == 7

    def test_heisenberg_matches_dense(self):
        n = 3
        h = heisenberg_xxz(n, jxy=0.7, jz=1.3)
        mat = self._dense_sum(h, n)
        state = random_state(n, seed=8)
        assert h.expectation(state) == pytest.approx(
            np.vdot(state, mat @ state), abs=1e-10
        )

    def test_maxcut_counts_cut_edges(self):
        # Path graph 0-1-2; assignment |010>ated cuts both edges.
        h = maxcut([(0, 1), (1, 2)])
        state = np.zeros(8, dtype=complex)
        state[0b010] = 1
        assert h.expectation(state).real == pytest.approx(2.0)
        state2 = np.zeros(8, dtype=complex)
        state2[0b000] = 1
        assert h.expectation(state2).real == pytest.approx(0.0)

    def test_maxcut_rejects_self_loop(self):
        with pytest.raises(CircuitError):
            maxcut([(1, 1)])

    def test_small_system_rejected(self):
        with pytest.raises(CircuitError):
            transverse_field_ising(1)
