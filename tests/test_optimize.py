"""Tests for the peephole optimizer."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, Gate, get_circuit
from repro.circuits.optimize import (
    cancel_inverse_pairs,
    merge_rotations,
    optimize,
)
from repro.verify import check_equivalence


def assert_unitary_preserved(original: Circuit, optimized: Circuit) -> None:
    if len(optimized) == 0:
        optimized = Circuit(original.num_qubits, [Gate("id", (0,))])
    assert check_equivalence(original, optimized).equivalent


class TestCancelInversePairs:
    def test_adjacent_self_inverse(self):
        c = Circuit(2).h(0).h(0).x(1)
        out = cancel_inverse_pairs(c)
        assert [g.name for g in out] == ["x"]
        assert_unitary_preserved(c, out)

    def test_named_inverse_pairs(self):
        c = Circuit(1).s(0).add("sdg", 0).t(0).add("tdg", 0)
        out = cancel_inverse_pairs(c)
        assert len(out) == 0

    def test_rotation_negation_cancels(self):
        c = Circuit(1).rz(0.4, 0).rz(-0.4, 0)
        assert len(cancel_inverse_pairs(c)) == 0

    def test_rotation_full_period_cancels(self):
        c = Circuit(1).rz(math.pi, 0).rz(3 * math.pi, 0)  # 4*pi total
        assert len(cancel_inverse_pairs(c)) == 0

    def test_p_gate_period_is_2pi(self):
        c = Circuit(1).p(math.pi, 0).p(math.pi, 0)
        assert len(cancel_inverse_pairs(c)) == 0
        # rz has period 4*pi: rz(pi) rz(pi) = rz(2*pi) = -I, NOT identity.
        c2 = Circuit(1).rz(math.pi, 0).rz(math.pi, 0)
        assert len(cancel_inverse_pairs(c2)) == 2

    def test_commuting_gate_between_pair(self):
        # The x(1) between the two h(0) does not block cancellation.
        c = Circuit(2).h(0).x(1).h(0)
        out = cancel_inverse_pairs(c)
        assert [g.name for g in out] == ["x"]
        assert_unitary_preserved(c, out)

    def test_blocking_gate_prevents_cancellation(self):
        c = Circuit(2).h(0).cx(0, 1).h(0)
        out = cancel_inverse_pairs(c)
        assert len(out) == 3

    def test_cx_pair_with_different_roles_not_cancelled(self):
        # cx(0,1) and cx(1,0) share qubits but are not inverses.
        c = Circuit(2).cx(0, 1).cx(1, 0)
        assert len(cancel_inverse_pairs(c)) == 2

    def test_cascading_cancellation(self):
        # x h h x collapses completely (inner pair first, then outer).
        c = Circuit(1).x(0).h(0).h(0).x(0)
        assert len(cancel_inverse_pairs(c)) == 0

    def test_echo_circuit_fully_cancels(self):
        base = get_circuit("qft", 4)
        echo = Circuit(4, [*base.gates, *base.inverse().gates])
        out = cancel_inverse_pairs(echo)
        assert len(out) == 0


class TestMergeRotations:
    def test_same_axis_merge(self):
        c = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        out = merge_rotations(c)
        assert len(out) == 1
        assert out.gates[0].params[0] == pytest.approx(0.7)

    def test_chain_merges_to_one(self):
        c = Circuit(1)
        for _ in range(6):
            c.ry(0.25, 0)
        out = merge_rotations(c)
        assert len(out) == 1
        assert out.gates[0].params[0] == pytest.approx(1.5)

    def test_different_axes_not_merged(self):
        c = Circuit(1).rz(0.3, 0).rx(0.3, 0)
        assert len(merge_rotations(c)) == 2

    def test_different_qubits_not_merged(self):
        c = Circuit(2).rz(0.3, 0).rz(0.3, 1)
        assert len(merge_rotations(c)) == 2

    def test_full_period_dropped(self):
        c = Circuit(1).p(1.5 * math.pi, 0).p(0.5 * math.pi, 0)
        assert len(merge_rotations(c)) == 0

    def test_controlled_rotations_merge(self):
        c = Circuit(2).cp(0.2, 0, 1).cp(0.3, 0, 1)
        out = merge_rotations(c)
        assert len(out) == 1
        assert out.gates[0].params[0] == pytest.approx(0.5)
        assert_unitary_preserved(c, out)


class TestOptimizePipeline:
    def test_mixed_circuit(self):
        c = Circuit(2)
        c.h(0).rz(0.2, 1).rz(-0.2, 1).h(0).cx(0, 1).cx(0, 1).t(0)
        out = optimize(c)
        assert [g.name for g in out] == ["t"]
        assert_unitary_preserved(c, out)

    def test_merge_then_cancel_interplay(self):
        # rz(0.3) rz(0.3) rz(-0.6): merging enables full cancellation.
        c = Circuit(1).rz(0.3, 0).rz(0.3, 0).rz(-0.6, 0)
        assert len(optimize(c)) == 0

    @pytest.mark.parametrize(
        "family,n,kwargs",
        [("qft", 4, {}), ("ghz", 5, {}), ("supremacy", 5, {"cycles": 4}),
         ("dnn", 4, {"layers": 2})],
    )
    def test_real_circuits_preserved(self, family, n, kwargs):
        c = get_circuit(family, n, **kwargs)
        out = optimize(c)
        assert len(out) <= len(c)
        assert_unitary_preserved(c, out)

    def test_dnn_rotation_columns_compress(self):
        # dnn layers emit rz-ry-rz columns; adjacent layers rz+rz merge
        # across the CX ladder only when unblocked -- still some gain.
        c = Circuit(1)
        for _ in range(10):
            c.rz(0.1, 0)
            c.ry(0.2, 0)
        out = optimize(c)
        assert len(out) == len(c)  # alternating axes: nothing to do
        c2 = Circuit(1)
        for _ in range(10):
            c2.rz(0.1, 0)
        assert len(optimize(c2)) == 1
