"""The paper's worked examples (Figures 2, 5, 7, 8, 9, 10), encoded as tests.

Each test builds the exact DD the figure draws and checks the quantity the
paper derives from it.
"""

import math

import numpy as np
import pytest

from repro.core.cost_model import CostModel, assign_cache_tasks, mac_count
from repro.core.dmav import assign_tasks, dmav_nocache
from repro.core.fusion import fuse_cost_aware
from repro.dd import (
    DDPackage,
    ZERO_EDGE,
    matrix_entry,
    matrix_to_dense,
    mm_multiply,
    node_count,
    single_qubit_gate,
    vector_from_array,
)
from repro.dd.vector import amplitude

from tests.conftest import random_state

SQ2 = 1.0 / math.sqrt(2.0)
H = np.array([[1, 1], [1, -1]]) * SQ2


class TestFigure2a:
    """M = H (x) I on two qubits: weights and the M[0][2] walk."""

    def setup_method(self):
        self.pkg = DDPackage(2)
        self.m = single_qubit_gate(self.pkg, H, 1)

    def test_root_incoming_weight(self):
        assert self.m.w == pytest.approx(SQ2)

    def test_root_outgoing_weights(self):
        ws = [e.w for e in self.m.n.edges]
        assert ws == [1.0, 1.0, 1.0, -1.0]

    def test_four_submatrices_share_one_node(self):
        children = {id(e.n) for e in self.m.n.edges}
        assert len(children) == 1

    def test_m_0_2_path_product(self):
        # The thick red path of Figure 2a: 1/sqrt(2) * 1 * 1.
        assert matrix_entry(self.pkg, self.m, 0, 2) == pytest.approx(SQ2)

    def test_full_matrix(self):
        np.testing.assert_allclose(
            matrix_to_dense(self.pkg, self.m),
            np.kron(H, np.eye(2)),
            atol=1e-12,
        )


class TestFigure2b:
    """V = (1/2, 0, 0, 1/2, 1/2, 0, 0, -1/2): five nodes, V[3] = 1/2."""

    ARR = np.array([0.5, 0, 0, 0.5, 0.5, 0, 0, -0.5], dtype=complex)

    def setup_method(self):
        self.pkg = DDPackage(3)
        self.v = vector_from_array(self.pkg, self.ARR)

    def test_five_unique_nodes(self):
        # v1 (root), v2, v3 (level q1), v4, v5 (level q0): Figure 2b.
        assert node_count(self.v) == 5

    def test_sub_vector_incoming_weights(self):
        # The two q1-level children carry weight 1/sqrt(2) each.
        w0 = self.v.n.edges[0].w
        w1 = self.v.n.edges[1].w
        assert abs(w0) == pytest.approx(SQ2)
        assert abs(w1) == pytest.approx(SQ2)

    def test_v3_amplitude_is_half(self):
        assert amplitude(self.pkg, self.v, 3) == pytest.approx(0.5)

    def test_opposite_subvectors_share_node(self):
        # (0, 1/sqrt 2) and (0, -1/sqrt 2) are the same node with opposite
        # incoming weights (the paper's v5).
        arr = vector_from_array(self.pkg, self.ARR)
        assert arr.n is self.v.n  # canonicity as a bonus check


class TestFigure5:
    """DMAV without caching: 3 qubits, 2 threads, task structure."""

    def test_blue_and_red_threads_get_two_tasks_each(self):
        pkg = DDPackage(3)
        # A root whose four sub-matrices share one node, like Figure 5's
        # m1 with weights a, b, c, d over a shared m2.
        m = single_qubit_gate(pkg, H, 2)
        tasks = assign_tasks(pkg, m, 2)
        assert [len(t) for t in tasks] == [2, 2]
        # Thread 0 (blue): a * m2 * V[0:4] and b * m2 * V[4:8].
        assert [iv for _, iv, _ in tasks[0]] == [0, 4]
        assert [iv for _, iv, _ in tasks[1]] == [0, 4]
        # All four tasks reference the same shared sub-matrix node.
        nodes = {id(node) for t in tasks for node, _, _ in t}
        assert len(nodes) == 1

    def test_result_matches_direct_product(self):
        pkg = DDPackage(3)
        m = single_qubit_gate(pkg, H, 2)
        v = random_state(3, seed=0)
        w, _ = dmav_nocache(pkg, m, v, 2)
        np.testing.assert_allclose(w, np.kron(H, np.eye(4)) @ v, atol=1e-10)


class TestFigure7:
    """DMAV with caching: per-thread caches and shared buffers."""

    def test_threads_with_nonoverlapping_outputs_share_buffer(self):
        pkg = DDPackage(3)
        # Figure 7's M has block-diagonal structure for threads t1/t2:
        # a controlled gate keeps half the output blocks disjoint.
        from repro.backends.gatecache import build_gate_dd
        from repro.circuits import Gate

        m = build_gate_dd(pkg, Gate("cx", (0,), (2,)))
        assignment = assign_cache_tasks(pkg, m, 4)
        # CX's column blocks map to disjoint output blocks: buffers shared.
        assert assignment.num_buffers < 4

    def test_repeated_nodes_become_cache_hits(self):
        pkg = DDPackage(4)
        m = single_qubit_gate(pkg, H, 3)
        assignment = assign_cache_tasks(pkg, m, 2)
        assert assignment.cache_hits == 2  # one per thread, as in Fig. 7


class TestFigure8:
    """MAC counting on the figure's exact six-node DD: T(m1) = 16."""

    def build(self, pkg):
        one = pkg.one_edge()
        m5 = pkg.make_mnode(0, (one, ZERO_EDGE, ZERO_EDGE, ZERO_EDGE))
        m6 = pkg.make_mnode(0, (ZERO_EDGE, ZERO_EDGE, ZERO_EDGE, one))
        m3 = pkg.make_mnode(1, (m5, ZERO_EDGE, ZERO_EDGE, m5))
        m4 = pkg.make_mnode(1, (ZERO_EDGE, m6, m6, ZERO_EDGE))
        m2 = pkg.make_mnode(2, (m3, m4, m3, m4))
        m1 = pkg.make_mnode(3, (m2, ZERO_EDGE, ZERO_EDGE, m2))
        return m1, m2, m3, m4, m5, m6

    def test_per_node_table(self):
        pkg = DDPackage(4)
        m1, m2, m3, m4, m5, m6 = self.build(pkg)
        assert mac_count(pkg, m5) == 1
        assert mac_count(pkg, m6) == 1
        assert mac_count(pkg, m3) == 2
        assert mac_count(pkg, m4) == 2
        assert mac_count(pkg, m2) == 8
        assert mac_count(pkg, m1) == 16

    def test_matches_nonzero_entries(self):
        pkg = DDPackage(4)
        m1, *_ = self.build(pkg)
        dense = matrix_to_dense(pkg, m1)
        assert mac_count(pkg, m1) == np.count_nonzero(np.abs(dense) > 1e-12)


class TestFigures9And10:
    """Gate fusion can reduce (Fig. 9) or increase (Fig. 10) computation."""

    def test_diagonal_gates_fuse_profitably(self):
        # Two diagonal gates: fused cost equals one pass instead of two.
        pkg = DDPackage(6)
        from repro.backends.gatecache import build_gate_dd
        from repro.circuits import Gate

        edges = [
            build_gate_dd(pkg, Gate("rz", (0,), params=(0.3,))),
            build_gate_dd(pkg, Gate("rz", (3,), params=(0.7,))),
        ]
        model = CostModel(1)
        seq_cost = sum(model.evaluate(pkg, e).cost for e in edges)
        fused = fuse_cost_aware(pkg, edges, model)
        assert len(fused.gates) == 1
        assert fused.total_cost == pytest.approx(seq_cost / 2)

    def test_dense_fusion_rejected_when_costlier(self):
        # Three H's on distinct qubits: fusing all three would cost
        # 8 * 2^n > 6 * 2^n sequential, so Algorithm 3 stops at two.
        pkg = DDPackage(6)
        edges = [single_qubit_gate(pkg, H, q) for q in (0, 1, 2)]
        model = CostModel(1)
        fused = fuse_cost_aware(pkg, edges, model)
        assert len(fused.gates) == 2
        assert max(fused.group_sizes) == 2
        # And the emitted cost never exceeds fully-sequential cost.
        seq_cost = sum(model.evaluate(pkg, e).cost for e in edges)
        assert fused.total_cost <= seq_cost

    def test_fused_product_still_correct(self):
        pkg = DDPackage(4)
        edges = [single_qubit_gate(pkg, H, q) for q in (0, 1, 2)]
        fused = fuse_cost_aware(pkg, edges, CostModel(1))
        acc = pkg.identity_edge(3)
        for e in fused.gates:
            acc = mm_multiply(pkg, e, acc)
        ref = pkg.identity_edge(3)
        for e in edges:
            ref = mm_multiply(pkg, e, ref)
        np.testing.assert_allclose(
            matrix_to_dense(pkg, acc), matrix_to_dense(pkg, ref), atol=1e-10
        )
