"""Unit tests for the parallel substrate (pool, partition, SIMD stand-ins)."""

import threading

import numpy as np
import pytest

from repro.common.errors import ParallelError
from repro.parallel import (
    COUNTERS,
    TaskRunner,
    border_level,
    chunk_bounds,
    simd_add,
    simd_mul,
    simd_mul_into,
    simd_scale_into,
    validate_thread_count,
)


class TestTaskRunner:
    def test_inline_mode_preserves_order(self):
        runner = TaskRunner(4, use_pool=False)
        out = runner.run([lambda i=i: i * i for i in range(8)])
        assert out == [i * i for i in range(8)]

    def test_pool_mode_preserves_order(self):
        with TaskRunner(4, use_pool=True) as runner:
            out = runner.run([lambda i=i: i + 1 for i in range(16)])
        assert out == list(range(1, 17))

    def test_pool_actually_uses_threads(self):
        seen = set()

        def task():
            seen.add(threading.get_ident())
            return 1

        with TaskRunner(4, use_pool=True) as runner:
            runner.run([task for _ in range(32)])
        # At least the pool executed (thread identities recorded); with one
        # core we cannot assert >1 distinct thread deterministically.
        assert seen

    def test_single_thread_pool_request_runs_inline(self):
        runner = TaskRunner(1, use_pool=True)
        assert not runner.use_pool

    def test_exceptions_propagate(self):
        def boom():
            raise RuntimeError("task failed")

        with TaskRunner(2, use_pool=True) as runner:
            with pytest.raises(RuntimeError, match="task failed"):
                runner.run([boom])

    def test_map(self):
        runner = TaskRunner(2)
        assert runner.map(lambda x: 2 * x, [1, 2, 3]) == [2, 4, 6]

    def test_invalid_thread_count(self):
        with pytest.raises(ParallelError):
            TaskRunner(0)

    def test_transient_pool_without_context(self):
        runner = TaskRunner(2, use_pool=True)
        assert runner.run([lambda: 5]) == [5]
        runner.close()

    def test_close_idempotent_and_reenterable(self):
        runner = TaskRunner(2, use_pool=True)
        with runner:
            assert runner.run([lambda: 3]) == [3]
        runner.close()
        runner.close()
        with runner:  # fresh executor after a full shutdown
            assert runner.run([lambda: 4]) == [4]

    def test_exception_in_with_block_releases_pool(self):
        runner = TaskRunner(2, use_pool=True)
        with pytest.raises(RuntimeError):
            with runner:
                raise RuntimeError("body failed")
        assert runner._pool is None

    def test_cancel_pending_default_stored(self):
        assert TaskRunner(2).cancel_pending is False
        assert TaskRunner(2, cancel_pending=True).cancel_pending is True


class TestValidation:
    def test_power_of_two_required(self):
        with pytest.raises(ParallelError):
            validate_thread_count(3, 8)

    def test_too_many_threads_for_qubits(self):
        with pytest.raises(ParallelError):
            validate_thread_count(16, 4)
        validate_thread_count(8, 4)  # t = 2**(n-1) is allowed

    def test_border_level(self):
        assert border_level(8, 1) == 7
        assert border_level(8, 8) == 4


class TestChunkBounds:
    def test_covers_range_without_overlap(self):
        bounds = chunk_bounds(10, 3)
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        bounds = chunk_bounds(2, 4)
        assert bounds[0] == (0, 1) and bounds[1] == (1, 2)
        assert bounds[2] == (2, 2)  # empty chunks allowed

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            chunk_bounds(5, 0)


class TestSimdStandins:
    def test_simd_mul_scales(self):
        COUNTERS.reset()
        src = np.arange(4, dtype=complex)
        out = simd_mul(src, 2j)
        np.testing.assert_allclose(out, 2j * src)
        assert COUNTERS.mul_calls == 1
        assert COUNTERS.mul_elements == 4

    def test_simd_mul_into_matches_simd_mul(self):
        COUNTERS.reset()
        src = np.arange(4, dtype=complex)
        dst = np.full(4, 99.0 + 0j)
        simd_mul_into(dst, src, 2j)
        # Same values and the same counter accounting as simd_mul, minus
        # the temporary allocation.
        np.testing.assert_array_equal(dst, simd_mul(src, 2j))
        assert COUNTERS.mul_calls == 2
        assert COUNTERS.mul_elements == 8

    def test_simd_mul_into_disjoint_slices_of_one_buffer(self):
        buf = np.arange(8, dtype=complex)
        simd_mul_into(buf[4:], buf[:4], -1.0)
        np.testing.assert_array_equal(buf[4:], -np.arange(4))

    def test_simd_add_accumulates_in_place(self):
        COUNTERS.reset()
        out = np.ones(4, dtype=complex)
        simd_add(out, np.full(4, 2.0 + 0j))
        np.testing.assert_allclose(out, np.full(4, 3.0))
        assert COUNTERS.add_calls == 1

    def test_simd_scale_into_writes_destination(self):
        dst = np.zeros(4, dtype=complex)
        simd_scale_into(dst, np.arange(4, dtype=complex), -1.0)
        np.testing.assert_allclose(dst, -np.arange(4))
