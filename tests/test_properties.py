"""Property-based tests (hypothesis) on the core invariants of DESIGN.md #6."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.backends import StatevectorSimulator
from repro.backends.gatecache import build_gate_dd
from repro.circuits import Circuit, Gate
from repro.core.conversion import convert_parallel
from repro.core.cost_model import CostModel, mac_count
from repro.core.dmav import dmav_cached, dmav_nocache
from repro.core.fusion import fuse_cost_aware
from repro.dd import (
    DDPackage,
    matrix_to_dense,
    mm_multiply,
    mv_multiply,
    node_count,
    vadd,
    vector_from_array,
    vector_to_array,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

N_QUBITS = 4


@st.composite
def states(draw, n=N_QUBITS):
    """Normalized complex state vectors with occasional exact zeros."""
    size = 1 << n
    reals = draw(
        st.lists(
            st.floats(-1, 1, allow_nan=False, width=32),
            min_size=size,
            max_size=size,
        )
    )
    imags = draw(
        st.lists(
            st.floats(-1, 1, allow_nan=False, width=32),
            min_size=size,
            max_size=size,
        )
    )
    zero_mask = draw(
        st.lists(st.booleans(), min_size=size, max_size=size)
    )
    arr = np.array(
        [0 if z else complex(r, i) for r, i, z in zip(reals, imags, zero_mask)]
    )
    # Keep amplitudes away from the zero-collapse tolerance boundary: any
    # absolute-tolerance DD package classifies values straddling it
    # inconsistently under rescaling (expected behaviour, not a bug).
    arr[np.abs(arr) < 1e-4] = 0
    norm = np.linalg.norm(arr)
    assume(norm > 1e-3)
    return arr / norm


@st.composite
def gates(draw, n=N_QUBITS):
    """Random library gates over n qubits."""
    kind = draw(st.sampled_from(["1q", "rot", "ctrl", "2q", "ccx"]))
    qubits = list(range(n))
    if kind == "1q":
        name = draw(st.sampled_from(["h", "x", "y", "z", "s", "t", "sx"]))
        return Gate(name, (draw(st.sampled_from(qubits)),))
    if kind == "rot":
        name = draw(st.sampled_from(["rx", "ry", "rz", "p"]))
        theta = draw(st.floats(0, 2 * math.pi, allow_nan=False))
        return Gate(name, (draw(st.sampled_from(qubits)),), params=(theta,))
    picked = draw(
        st.lists(st.sampled_from(qubits), min_size=3, max_size=3, unique=True)
    )
    if kind == "ctrl":
        name = draw(st.sampled_from(["cx", "cz", "ch"]))
        return Gate(name, (picked[1],), (picked[0],))
    if kind == "2q":
        name = draw(st.sampled_from(["swap", "iswap"]))
        return Gate(name, (picked[0], picked[1]))
    return Gate("ccx", (picked[2],), (picked[0], picked[1]))


circuits = st.lists(gates(), min_size=1, max_size=12)

# ---------------------------------------------------------------------------
# DD structure invariants
# ---------------------------------------------------------------------------


class TestDDCanonicity:
    @settings(max_examples=40, deadline=None)
    @given(states())
    def test_roundtrip(self, arr):
        pkg = DDPackage(N_QUBITS)
        e = vector_from_array(pkg, arr)
        np.testing.assert_allclose(vector_to_array(pkg, e), arr, atol=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(states())
    def test_rebuild_gives_identical_node(self, arr):
        pkg = DDPackage(N_QUBITS)
        a = vector_from_array(pkg, arr)
        b = vector_from_array(pkg, arr.copy())
        assert a.n is b.n

    @settings(max_examples=40, deadline=None)
    @given(states(), st.floats(0.1, 4.0), st.floats(0, 2 * math.pi))
    def test_scalar_multiples_share_structure(self, arr, mag, phase):
        pkg = DDPackage(N_QUBITS)
        a = vector_from_array(pkg, arr)
        b = vector_from_array(pkg, arr * mag * np.exp(1j * phase))
        assert a.n is b.n

    @settings(max_examples=40, deadline=None)
    @given(states())
    def test_node_count_bounded(self, arr):
        pkg = DDPackage(N_QUBITS)
        e = vector_from_array(pkg, arr)
        assert node_count(e) <= (1 << N_QUBITS) - 1


class TestDDAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(states(), states())
    def test_addition_matches_numpy(self, a, b):
        pkg = DDPackage(N_QUBITS)
        ea, eb = vector_from_array(pkg, a), vector_from_array(pkg, b)
        got = vector_to_array(pkg, vadd(pkg, ea, eb))
        np.testing.assert_allclose(got, a + b, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(gates(), states())
    def test_mv_matches_dense(self, gate, arr):
        pkg = DDPackage(N_QUBITS)
        m = build_gate_dd(pkg, gate)
        v = vector_from_array(pkg, arr)
        got = vector_to_array(pkg, mv_multiply(pkg, m, v))
        np.testing.assert_allclose(
            got, matrix_to_dense(pkg, m) @ arr, atol=1e-6
        )

    @settings(max_examples=30, deadline=None)
    @given(gates(), gates())
    def test_mm_matches_dense(self, g1, g2):
        pkg = DDPackage(N_QUBITS)
        a, b = build_gate_dd(pkg, g1), build_gate_dd(pkg, g2)
        got = matrix_to_dense(pkg, mm_multiply(pkg, a, b))
        ref = matrix_to_dense(pkg, a) @ matrix_to_dense(pkg, b)
        np.testing.assert_allclose(got, ref, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(gates())
    def test_gate_dds_are_unitary(self, gate):
        pkg = DDPackage(N_QUBITS)
        dense = matrix_to_dense(pkg, build_gate_dd(pkg, gate))
        np.testing.assert_allclose(
            dense @ dense.conj().T, np.eye(1 << N_QUBITS), atol=1e-7
        )


# ---------------------------------------------------------------------------
# Kernel invariants: DMAV and conversion agree with dense math at all t
# ---------------------------------------------------------------------------


class TestKernelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(gates(), states(), st.sampled_from([1, 2, 4]))
    def test_dmav_variants_match_dense(self, gate, arr, threads):
        pkg = DDPackage(N_QUBITS)
        m = build_gate_dd(pkg, gate)
        ref = matrix_to_dense(pkg, m) @ arr
        w1, _ = dmav_nocache(pkg, m, arr, threads)
        w2, _ = dmav_cached(pkg, m, arr, threads)
        np.testing.assert_allclose(w1, ref, atol=1e-6)
        np.testing.assert_allclose(w2, ref, atol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(states(), st.sampled_from([1, 2, 4]), st.booleans(), st.booleans())
    def test_conversion_matches_input(self, arr, threads, lb, sm):
        pkg = DDPackage(N_QUBITS)
        e = vector_from_array(pkg, arr)
        out, _ = convert_parallel(
            pkg, e, threads, load_balance=lb, scalar_mult=sm
        )
        np.testing.assert_allclose(out, arr, atol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(gates())
    def test_mac_count_equals_nonzeros(self, gate):
        pkg = DDPackage(N_QUBITS)
        m = build_gate_dd(pkg, gate)
        dense = matrix_to_dense(pkg, m)
        # Exact count, no magnitude cutoff: each matrix entry is the
        # product of edge weights along its unique DD path, so a
        # structural nonzero is a nonzero entry no matter how tiny the
        # rotation angle (rx(1e-9) has 5e-10 off-diagonals that a 1e-9
        # threshold would miscount).
        assert mac_count(pkg, m) == np.count_nonzero(dense)


# ---------------------------------------------------------------------------
# End-to-end invariants
# ---------------------------------------------------------------------------


class TestSimulationInvariants:
    @settings(max_examples=15, deadline=None)
    @given(circuits)
    def test_norm_preserved_and_backends_agree(self, gate_list):
        c = Circuit(N_QUBITS, gate_list)
        ref = StatevectorSimulator(mode="reshape").run(c).state
        assert np.linalg.norm(ref) == pytest.approx(1.0, abs=1e-7)
        from repro import FlatDDSimulator

        r = FlatDDSimulator(threads=2).run(c)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(1.0, abs=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(circuits)
    def test_fusion_preserves_operator(self, gate_list):
        pkg = DDPackage(N_QUBITS)
        edges = [build_gate_dd(pkg, g) for g in gate_list]
        fused = fuse_cost_aware(pkg, edges, CostModel(2))
        acc = pkg.identity_edge(N_QUBITS - 1)
        for e in fused.gates:
            acc = mm_multiply(pkg, e, acc)
        ref = pkg.identity_edge(N_QUBITS - 1)
        for e in edges:
            ref = mm_multiply(pkg, e, ref)
        np.testing.assert_allclose(
            matrix_to_dense(pkg, acc), matrix_to_dense(pkg, ref), atol=1e-6
        )
