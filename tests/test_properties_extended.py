"""Property-based tests for the extension modules (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.backends import StatevectorSimulator
from repro.circuits import Circuit, Gate
from repro.circuits.transpile import BASIS_GATES, decompose, zyz_angles
from repro.dd import (
    DDPackage,
    entanglement_entropy,
    inner_product,
    prune_small_contributions,
    vector_from_array,
    vector_to_array,
)
from repro.observables import PauliString
from repro.sampling import marginal_probabilities

from tests.test_properties import N_QUBITS, gates, states

# ---------------------------------------------------------------------------
# Transpiler
# ---------------------------------------------------------------------------


@st.composite
def unitaries_2x2(draw):
    a = draw(st.floats(0, 2 * math.pi, allow_nan=False))
    b = draw(st.floats(0, 2 * math.pi, allow_nan=False))
    c = draw(st.floats(0, 2 * math.pi, allow_nan=False))
    d = draw(st.floats(0, 2 * math.pi, allow_nan=False))
    rz = lambda t: np.diag([np.exp(-0.5j * t), np.exp(0.5j * t)])
    ry = lambda t: np.array(
        [[math.cos(t / 2), -math.sin(t / 2)],
         [math.sin(t / 2), math.cos(t / 2)]]
    )
    return np.exp(1j * a) * rz(b) @ ry(c) @ rz(d)


class TestTranspileProperties:
    @settings(max_examples=40, deadline=None)
    @given(unitaries_2x2())
    def test_zyz_reconstructs_any_unitary(self, u):
        alpha, beta, gamma, delta = zyz_angles(u)
        rz = lambda t: np.diag([np.exp(-0.5j * t), np.exp(0.5j * t)])
        ry = lambda t: np.array(
            [[math.cos(t / 2), -math.sin(t / 2)],
             [math.sin(t / 2), math.cos(t / 2)]]
        )
        rebuilt = np.exp(1j * alpha) * rz(beta) @ ry(gamma) @ rz(delta)
        np.testing.assert_allclose(rebuilt, u, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(gates(), min_size=1, max_size=8))
    def test_decomposed_circuit_preserves_state(self, gate_list):
        c = Circuit(N_QUBITS, gate_list)
        out, phase = decompose(c)
        assert all(g.name in BASIS_GATES for g in out.gates)
        sim = StatevectorSimulator(mode="reshape")
        ref = sim.run(c).state
        got = sim.run(out).state if len(out) else _zero_state()
        np.testing.assert_allclose(got, phase * ref, atol=1e-7)


def _zero_state():
    z = np.zeros(1 << N_QUBITS, dtype=complex)
    z[0] = 1
    return z


# ---------------------------------------------------------------------------
# Observables
# ---------------------------------------------------------------------------


@st.composite
def pauli_strings(draw, n=N_QUBITS):
    count = draw(st.integers(1, n))
    qubits = draw(
        st.lists(
            st.integers(0, n - 1), min_size=count, max_size=count,
            unique=True,
        )
    )
    ops = draw(
        st.lists(
            st.sampled_from(["X", "Y", "Z"]),
            min_size=count, max_size=count,
        )
    )
    return PauliString(tuple(zip(qubits, ops)))


class TestObservableProperties:
    @settings(max_examples=30, deadline=None)
    @given(pauli_strings(), states())
    def test_expectation_is_real_and_bounded(self, pauli, arr):
        value = pauli.expectation(arr)
        assert abs(value.imag) < 1e-9
        assert -1.0 - 1e-9 <= value.real <= 1.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(pauli_strings(), states())
    def test_pauli_application_preserves_norm(self, pauli, arr):
        out = pauli.apply(arr)
        assert np.linalg.norm(out) == pytest.approx(
            np.linalg.norm(arr), abs=1e-9
        )

    @settings(max_examples=30, deadline=None)
    @given(pauli_strings(), states())
    def test_involution(self, pauli, arr):
        np.testing.assert_allclose(
            pauli.apply(pauli.apply(arr)), arr, atol=1e-9
        )


# ---------------------------------------------------------------------------
# Sampling / density / approximation
# ---------------------------------------------------------------------------


class TestStateAnalysisProperties:
    @settings(max_examples=30, deadline=None)
    @given(states(), st.integers(1, N_QUBITS - 1))
    def test_entropy_bounds(self, arr, cut):
        pkg = DDPackage(N_QUBITS)
        state = vector_from_array(pkg, arr)
        s = entanglement_entropy(pkg, state, cut)
        assert -1e-9 <= s <= min(cut, N_QUBITS - cut) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(states())
    def test_marginals_are_distributions(self, arr):
        for qubits in ([0], [N_QUBITS - 1, 1]):
            m = marginal_probabilities(arr, qubits)
            assert m.min() >= -1e-12
            assert m.sum() == pytest.approx(1.0, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(states(), st.floats(0.01, 0.3))
    def test_approximation_fidelity_budget(self, arr, budget):
        pkg = DDPackage(N_QUBITS)
        state = vector_from_array(pkg, arr)
        result = prune_small_contributions(pkg, state, budget)
        assert result.fidelity >= 1.0 - budget - 1e-6
        assert result.nodes_after <= result.nodes_before
        out = vector_to_array(pkg, result.state)
        assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(states(), states())
    def test_cauchy_schwarz(self, a, b):
        pkg = DDPackage(N_QUBITS)
        ea = vector_from_array(pkg, a)
        eb = vector_from_array(pkg, b)
        ip = inner_product(pkg, ea, eb)
        assert abs(ip) <= 1.0 + 1e-9  # both states are normalized
