"""Unit tests for the OpenQASM 2.0 parser and writer."""

import math

import numpy as np
import pytest

from repro.circuits import get_circuit, parse_qasm, to_qasm
from repro.common.errors import QasmError

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestParsing:
    def test_basic_program(self):
        c = parse_qasm(HEADER + "qreg q[2];\nh q[0];\ncx q[0],q[1];\n")
        assert c.num_qubits == 2
        assert [g.name for g in c] == ["h", "cx"]
        assert c.gates[1].controls == (0,)

    def test_multiple_registers_flatten_in_order(self):
        c = parse_qasm(HEADER + "qreg a[2];\nqreg b[2];\ncx a[1],b[0];\n")
        assert c.num_qubits == 4
        g = c.gates[0]
        assert g.controls == (1,)
        assert g.targets == (2,)

    def test_parameter_expressions(self):
        c = parse_qasm(HEADER + "qreg q[1];\nrz(pi/4) q[0];\nrx(-pi) q[0];\n"
                       "u3(pi/2,0.5,2*pi) q[0];\np(pi^2) q[0];\n")
        assert c.gates[0].params[0] == pytest.approx(math.pi / 4)
        assert c.gates[1].params[0] == pytest.approx(-math.pi)
        assert c.gates[2].params == pytest.approx(
            (math.pi / 2, 0.5, 2 * math.pi)
        )
        assert c.gates[3].params[0] == pytest.approx(math.pi ** 2)

    def test_comments_and_blank_lines_skipped(self):
        src = HEADER + "// a comment\n\nqreg q[1];\nh q[0]; // trailing\n"
        assert len(parse_qasm(src)) == 1

    def test_barrier_and_measure_ignored(self):
        src = (HEADER + "qreg q[2];\ncreg c[2];\nh q[0];\n"
               "barrier q[0],q[1];\nmeasure q[0] -> c[0];\n")
        c = parse_qasm(src)
        assert [g.name for g in c] == ["h"]

    def test_multiple_statements_per_line(self):
        c = parse_qasm(HEADER + "qreg q[2]; h q[0]; x q[1];\n")
        assert len(c) == 2

    def test_ccx_control_split(self):
        c = parse_qasm(HEADER + "qreg q[3];\nccx q[0],q[1],q[2];\n")
        g = c.gates[0]
        assert g.controls == (0, 1) and g.targets == (2,)


class TestParseErrors:
    def test_missing_header(self):
        with pytest.raises(QasmError):
            parse_qasm("qreg q[1];\nh q[0];\n")

    def test_missing_qreg(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "h q[0];\n")

    def test_unknown_gate(self):
        with pytest.raises(QasmError, match="unknown gate"):
            parse_qasm(HEADER + "qreg q[1];\nwarp q[0];\n")

    def test_unknown_register(self):
        with pytest.raises(QasmError, match="unknown register"):
            parse_qasm(HEADER + "qreg q[1];\nh r[0];\n")

    def test_index_out_of_range(self):
        with pytest.raises(QasmError, match="out of range"):
            parse_qasm(HEADER + "qreg q[1];\nh q[1];\n")

    def test_duplicate_register(self):
        with pytest.raises(QasmError, match="duplicate"):
            parse_qasm(HEADER + "qreg q[1];\nqreg q[2];\n")

    def test_whole_register_operand_unsupported(self):
        with pytest.raises(QasmError, match="indexed"):
            parse_qasm(HEADER + "qreg q[2];\nh q;\n")

    def test_malformed_parameter(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nrz(import os) q[0];\n")

    def test_function_call_in_parameter_rejected(self):
        with pytest.raises(QasmError):
            parse_qasm(HEADER + "qreg q[1];\nrz(abs(-1)) q[0];\n")

    def test_error_reports_line_number(self):
        try:
            parse_qasm(HEADER + "qreg q[1];\nwarp q[0];\n")
        except QasmError as exc:
            assert exc.line == 4
        else:  # pragma: no cover
            pytest.fail("expected QasmError")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "family,n",
        [("ghz", 5), ("adder", 6), ("qft", 4), ("dnn", 4), ("knn", 5),
         ("supremacy", 4)],
    )
    def test_generator_roundtrip(self, family, n):
        c = get_circuit(family, n)
        c2 = parse_qasm(to_qasm(c))
        assert c2.num_qubits == c.num_qubits
        assert len(c2) == len(c)
        for a, b in zip(c, c2):
            assert a.base_name == b.base_name
            assert a.targets == b.targets
            assert a.controls == b.controls
            np.testing.assert_allclose(a.params, b.params, atol=1e-15)

    def test_qasm_text_shape(self):
        c = get_circuit("ghz", 3)
        text = to_qasm(c)
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in text
        assert text.strip().endswith("cx q[1],q[2];")
