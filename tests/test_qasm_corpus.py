"""Corpus tests: real OpenQASM files parsed, simulated, cross-validated."""

import math
import os

import numpy as np
import pytest

from repro import DDSimulator, FlatDDSimulator, StatevectorSimulator
from repro.circuits import parse_qasm, to_qasm

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
CORPUS = sorted(
    f for f in os.listdir(DATA_DIR) if f.endswith(".qasm")
)


def load(name: str):
    with open(os.path.join(DATA_DIR, name), "r", encoding="utf-8") as fh:
        return parse_qasm(fh.read(), name=name)


class TestCorpusParses:
    @pytest.mark.parametrize("name", CORPUS)
    def test_parses_and_simulates(self, name):
        circuit = load(name)
        assert len(circuit) > 0
        result = StatevectorSimulator().run(circuit)
        assert np.linalg.norm(result.state) == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("name", CORPUS)
    def test_backends_agree(self, name):
        circuit = load(name)
        sv = StatevectorSimulator().run(circuit)
        dd = DDSimulator().run(circuit)
        flat = FlatDDSimulator(threads=2).run(circuit)
        assert dd.fidelity(sv) == pytest.approx(1.0, abs=1e-8)
        assert flat.fidelity(sv) == pytest.approx(1.0, abs=1e-8)

    @pytest.mark.parametrize("name", CORPUS)
    def test_roundtrips_through_writer(self, name):
        circuit = load(name)
        again = parse_qasm(to_qasm(circuit))
        assert len(again) == len(circuit)
        ref = StatevectorSimulator().run(circuit).state
        got = StatevectorSimulator().run(again).state
        np.testing.assert_allclose(got, ref, atol=1e-10)


class TestCorpusSemantics:
    def test_bell_state(self):
        state = StatevectorSimulator().run(load("bell.qasm")).state
        expected = np.zeros(4)
        expected[0] = expected[3] = 1 / math.sqrt(2)
        np.testing.assert_allclose(np.abs(state), expected, atol=1e-10)

    def test_toffoli_chain_computes_and(self):
        state = StatevectorSimulator().run(load("toffoli_chain.qasm")).state
        hot = int(np.argmax(np.abs(state)))
        # inputs 111 (qubits 0-2), ancilla cleared (qubit 3), out=1 (qubit 4)
        assert hot == 0b10111
        assert abs(state[hot]) == pytest.approx(1.0)

    def test_teleport_register_layout(self):
        circuit = load("teleport.qasm")
        assert circuit.num_qubits == 3
        # alice[1] -> qubit 1; bob[0] -> qubit 2.
        cx_gates = [g for g in circuit if g.name == "cx"]
        assert (cx_gates[0].controls, cx_gates[0].targets) == ((1,), (2,))

    def test_parameter_expressions_values(self):
        circuit = load("parameter_expressions.qasm")
        by_name = {}
        for g in circuit:
            by_name.setdefault(g.name, []).append(g)
        assert by_name["rz"][0].params[0] == pytest.approx(math.pi)
        assert by_name["rz"][1].params[0] == pytest.approx(-math.pi / 2)
        assert by_name["rx"][0].params[0] == pytest.approx(2 * math.pi / 3)
        assert by_name["cp"][0].params[0] == pytest.approx(math.pi ** 2 / 10)
        assert by_name["ry"][0].params[0] == pytest.approx(0.75)

    def test_qaoa_layer_uniform_marginals(self):
        # One QAOA round on a symmetric ring keeps single-qubit marginals
        # uniform by symmetry.
        state = StatevectorSimulator().run(load("qaoa_layer.qasm")).state
        from repro.sampling import marginal_probabilities

        for q in range(4):
            m = marginal_probabilities(state, [q])
            np.testing.assert_allclose(m, [0.5, 0.5], atol=1e-9)
