"""Unit tests for static qubit-order planning (repro.core.reorder).

The plan is a pure function of gate *structure*: the same circuit always
gets the same plan, bound and template instances agree, and a selected
order is never worse than natural under the span metric.  The
permute/unpermute pair must round-trip statevectors exactly.
"""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.circuits.circuit import Circuit
from repro.core.reorder import (
    ReorderPlan,
    interaction_weights,
    permute_circuit,
    plan_qubit_order,
    span_cost,
    unpermute_axes,
)


def _ladder(n=5):
    """Nearest-neighbour ladder: already optimally ordered."""
    c = Circuit(n, name="ladder")
    for q in range(n - 1):
        c.cx(q, q + 1)
    return c


def _long_range(n=6):
    """Every two-qubit gate spans the full register: reorder can't help
    every pair, but the greedy arrangement should beat natural."""
    c = Circuit(n, name="long-range")
    for _ in range(3):
        c.cx(0, n - 1)
        c.cx(1, n - 2)
        c.cx(0, n - 2)
    return c


class TestInteractionWeights:
    def test_single_qubit_gates_ignored(self):
        c = Circuit(3).h(0).h(1).h(2)
        assert interaction_weights(c) == {}

    def test_two_qubit_gates_counted_per_pair(self):
        c = Circuit(3).cx(0, 2).cx(0, 2).cx(1, 2)
        w = interaction_weights(c)
        assert w == {(0, 2): 2, (1, 2): 1}

    def test_controls_count_like_targets(self):
        c = Circuit(3)
        c.ccx(0, 1, 2)
        w = interaction_weights(c)
        assert w == {(0, 1): 1, (0, 2): 1, (1, 2): 1}


class TestSpanCost:
    def test_adjacent_pair_costs_weight(self):
        assert span_cost({(0, 1): 3}, (0, 1, 2)) == 3.0

    def test_distant_pair_scales_with_span(self):
        assert span_cost({(0, 2): 3}, (0, 1, 2)) == 6.0


class TestPlanQubitOrder:
    def test_natural_mode_is_identity(self):
        plan = plan_qubit_order(_long_range(), "natural")
        assert plan.is_natural
        assert plan.cost_selected == plan.cost_natural

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="qubit order mode"):
            plan_qubit_order(_ladder(), "zigzag")

    @pytest.mark.parametrize("mode", ["interaction", "sift"])
    def test_selected_never_worse_than_natural(self, mode):
        for circ in (_ladder(), _long_range(), get_circuit("qft", 6),
                     get_circuit("supremacy", 6)):
            plan = plan_qubit_order(circ, mode)
            assert plan.cost_selected <= plan.cost_natural
            # the order is a permutation of range(n)
            assert sorted(plan.order) == list(range(circ.num_qubits))

    def test_already_optimal_circuit_stays_natural(self):
        # A nearest-neighbour ladder has span cost n-1; no permutation
        # beats it strictly, so the fallback keeps the identity order.
        plan = plan_qubit_order(_ladder(), "sift")
        assert plan.is_natural

    def test_long_range_circuit_improves(self):
        plan = plan_qubit_order(_long_range(), "interaction")
        assert plan.cost_selected < plan.cost_natural

    @pytest.mark.parametrize("mode", ["interaction", "sift"])
    def test_plan_is_deterministic(self, mode):
        a = plan_qubit_order(_long_range(), mode)
        b = plan_qubit_order(_long_range(), mode)
        assert a == b

    def test_template_and_bound_agree(self):
        # Parameter values must not influence the plan (sweep grouping
        # and checkpoint resume depend on this).
        tpl = Circuit(4, name="tpl")
        for q in range(4):
            tpl.ry(0.0, q)
        tpl.cx(0, 3).cx(1, 3).cx(0, 2)
        bound = tpl.bind((0.3, -1.2, 2.7, 0.01))
        for mode in ("interaction", "sift"):
            assert (
                plan_qubit_order(tpl, mode).order
                == plan_qubit_order(bound, mode).order
            )

    def test_sift_reports_moves(self):
        plan = plan_qubit_order(get_circuit("supremacy", 6), "sift")
        assert isinstance(plan, ReorderPlan)
        assert plan.sift_moves >= 0


class TestPermuteUnpermute:
    def test_permute_relabels_gates(self):
        c = Circuit(3).cx(0, 2)
        p = permute_circuit(c, (2, 1, 0))
        g = p.gates[0]
        assert g.controls == (2,)
        assert g.targets == (0,)

    def test_unpermute_axes_identity(self):
        assert unpermute_axes((0, 1, 2)) == (0, 1, 2)

    @pytest.mark.parametrize("order", [(1, 0, 2), (2, 0, 1), (2, 1, 0)])
    def test_statevector_round_trip(self, order):
        # Simulating the permuted circuit and un-permuting its amplitudes
        # must reproduce the canonical statevector exactly.
        from repro.backends.statevector import StatevectorSimulator

        rng = np.random.default_rng(7)
        c = Circuit(3, name="rt")
        for q in range(3):
            c.ry(float(rng.uniform(-np.pi, np.pi)), q)
        c.cx(0, 1).cx(1, 2).cx(0, 2)
        for q in range(3):
            c.rz(float(rng.uniform(-np.pi, np.pi)), q)
        sim = StatevectorSimulator()
        canonical = sim.run(c).state
        permuted = sim.run(permute_circuit(c, order)).state
        n = 3
        restored = permuted.reshape([2] * n).transpose(
            unpermute_axes(order)
        ).reshape(1 << n)
        np.testing.assert_allclose(restored, canonical, atol=1e-12)
