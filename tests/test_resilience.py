"""Resilience tests: bit-identical resume, memory guardrails, CLI codes."""

import json

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.cli import main
from repro.common.config import FlatDDConfig
from repro.common.errors import CheckpointError, ResourceExhaustedError
from repro.core.simulator import FlatDDSimulator
from repro.resilience import MemoryGuard, read_snapshot
from tests.conftest import reference_state


def run_with_checkpoint(circuit, every, path, **cfg_kwargs):
    cfg = FlatDDConfig(threads=2, **cfg_kwargs)
    return FlatDDSimulator(cfg).run(
        circuit, checkpoint_every=every, checkpoint_path=str(path)
    )


class TestBitIdenticalResume:
    def test_dd_phase_resume(self, tmp_path):
        circuit = get_circuit("ghz", 8)
        path = tmp_path / "dd.ckpt"
        full = run_with_checkpoint(circuit, 3, path)
        snap = read_snapshot(str(path))
        assert snap.phase == "dd"
        assert full.metadata["checkpoints_written"] >= 1
        resumed = FlatDDSimulator(FlatDDConfig(threads=2)).run(
            circuit, resume_from=str(path)
        )
        assert resumed.metadata["resumed"] is True
        assert resumed.metadata["resume_phase"] == "dd"
        assert np.array_equal(full.state, resumed.state)

    def test_array_phase_resume(self, tmp_path):
        # Forcing an early conversion guarantees the final snapshot lands
        # in the DMAV phase.
        circuit = get_circuit("qft", 7)
        path = tmp_path / "arr.ckpt"
        full = run_with_checkpoint(circuit, 2, path, force_convert_at=3)
        snap = read_snapshot(str(path))
        assert snap.phase == "array"
        resumed = FlatDDSimulator(
            FlatDDConfig(threads=2, force_convert_at=3)
        ).run(circuit, resume_from=str(path))
        assert resumed.metadata["resume_phase"] == "array"
        assert np.array_equal(full.state, resumed.state)

    def test_ewma_timed_conversion_resume(self, tmp_path):
        # No forcing: the EWMA monitor decides, and its restored
        # accumulator must re-trigger at the very same gate.
        circuit = get_circuit("supremacy", 9)
        path = tmp_path / "ewma.ckpt"
        full = run_with_checkpoint(circuit, 10, path)
        resumed = FlatDDSimulator(FlatDDConfig(threads=2)).run(
            circuit, resume_from=str(path)
        )
        assert np.array_equal(full.state, resumed.state)
        assert (
            full.metadata.get("conversion_gate_index")
            == resumed.metadata.get("conversion_gate_index")
        )

    def test_resume_with_fusion(self, tmp_path):
        circuit = get_circuit("dnn", 6)
        path = tmp_path / "fused.ckpt"
        full = run_with_checkpoint(circuit, 6, path, fusion="cost")
        resumed = FlatDDSimulator(
            FlatDDConfig(threads=2, fusion="cost")
        ).run(circuit, resume_from=str(path))
        assert np.array_equal(full.state, resumed.state)

    def test_resumed_state_is_correct(self, tmp_path):
        # Bit-identity to the writer is necessary but not sufficient --
        # the resumed state must also be the *right* answer.
        circuit = get_circuit("qft", 6)
        path = tmp_path / "ok.ckpt"
        run_with_checkpoint(circuit, 5, path)
        resumed = FlatDDSimulator(FlatDDConfig(threads=2)).run(
            circuit, resume_from=str(path)
        )
        ref = reference_state(circuit)
        overlap = np.vdot(resumed.state, ref)
        assert abs(abs(overlap) - 1.0) < 1e-9

    def test_resume_rejects_wrong_circuit(self, tmp_path):
        path = tmp_path / "pin.ckpt"
        run_with_checkpoint(get_circuit("ghz", 6), 2, path)
        with pytest.raises(CheckpointError, match="fingerprint"):
            FlatDDSimulator(FlatDDConfig(threads=2)).run(
                get_circuit("qft", 6), resume_from=str(path)
            )

    def test_resume_rejects_semantic_config_change(self, tmp_path):
        circuit = get_circuit("ghz", 6)
        path = tmp_path / "cfg.ckpt"
        run_with_checkpoint(circuit, 2, path)
        with pytest.raises(CheckpointError, match="config digest"):
            FlatDDSimulator(
                FlatDDConfig(threads=2, fusion="cost")
            ).run(circuit, resume_from=str(path))

    def test_checkpoint_every_requires_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            FlatDDSimulator(FlatDDConfig()).run(
                get_circuit("ghz", 4), checkpoint_every=2
            )

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            FlatDDSimulator(FlatDDConfig()).run(
                get_circuit("ghz", 4),
                checkpoint_every=0,
                checkpoint_path=str(tmp_path / "x"),
            )


class TestMemoryGuard:
    def test_disabled_by_default(self):
        guard = MemoryGuard(None)
        assert not guard.enabled
        assert not guard.check_dd(10**12, 0)
        guard.check_array(10**12, 0)  # must not raise

    def test_dd_breach_forces_conversion(self):
        guard = MemoryGuard(1000)
        assert guard.check_dd(2000, 5)
        assert guard.report.dd_breach_gate == 5
        assert guard.report.dd_breach_bytes == 2000

    def test_array_breach_raises_structured_error(self, tmp_path):
        guard = MemoryGuard(1000)
        marker = tmp_path / "guard.ckpt"
        with pytest.raises(ResourceExhaustedError) as info:
            guard.check_array(
                5000, 7, checkpoint=lambda: str(marker)
            )
        err = info.value
        assert err.phase == "array"
        assert err.observed_bytes == 5000
        assert err.budget_bytes == 1000
        assert err.gate_index == 7
        assert err.checkpoint_path == str(marker)

    def test_simulator_degrades_then_completes(self):
        # A budget large enough for the flat array but not for the DD
        # growth: the run must force conversion early and still finish
        # with correct amplitudes.
        circuit = get_circuit("supremacy", 9)
        # identity_skip off: windowed gate DDs keep this circuit's DD
        # phase under the budget, and the EWMA trigger would fire before
        # the guard ever breaches -- the ablation keeps the historic
        # DD-growth-breaches-first scenario this test exercises.
        cfg = FlatDDConfig(
            threads=2, memory_budget_bytes=60_000, identity_skip=False
        )
        res = FlatDDSimulator(cfg).run(circuit)
        assert res.metadata.get("guard_forced_conversion") is True
        assert res.metadata["converted"] is True
        assert res.metadata["guard"]["budget_bytes"] == 60_000
        ref = reference_state(circuit)
        assert abs(abs(np.vdot(res.state, ref)) - 1.0) < 1e-9

    def test_simulator_raises_when_array_exceeds_budget(self, tmp_path):
        # 10 qubits -> the flat array alone is 16 KiB > 10 KB budget: the
        # guard must checkpoint and raise rather than thrash.
        circuit = get_circuit("supremacy", 10)
        path = tmp_path / "exhausted.ckpt"
        cfg = FlatDDConfig(threads=2, memory_budget_bytes=10_000)
        with pytest.raises(ResourceExhaustedError) as info:
            FlatDDSimulator(cfg).run(
                circuit, checkpoint_every=5, checkpoint_path=str(path)
            )
        assert info.value.checkpoint_path == str(path)
        snap = read_snapshot(str(path))
        assert snap.phase == "array"

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="memory_budget_bytes"):
            FlatDDConfig(memory_budget_bytes=0)


class TestCliResilience:
    def _simulate(self, *extra):
        return main(
            ["simulate", "--family", "ghz", "--qubits", "5",
             "--backend", "flatdd", "--json", *extra]
        )

    def test_checkpoint_and_resume_via_cli(self, tmp_path, capsys):
        path = str(tmp_path / "cli.ckpt")
        assert self._simulate(
            "--checkpoint", path, "--checkpoint-every", "2"
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["checkpoints_written"] >= 1
        assert self._simulate("--resume-from", path) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["resumed_from"] == path

    def test_exit_code_3_on_resource_exhaustion(self, tmp_path, capsys):
        path = str(tmp_path / "oom.ckpt")
        code = main(
            ["simulate", "--family", "supremacy", "--qubits", "10",
             "--backend", "flatdd", "--memory-budget", "10000",
             "--checkpoint", path, "--checkpoint-every", "5"]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "memory budget" in err or "budget" in err

    def test_exit_code_4_on_corrupt_checkpoint(self, tmp_path, capsys):
        bad = tmp_path / "bad.ckpt"
        bad.write_text('{"magic": "flatdd-snapshot", "version": 1}')
        assert self._simulate("--resume-from", str(bad)) == 4

    def test_exit_code_4_on_missing_checkpoint(self, tmp_path):
        assert self._simulate(
            "--resume-from", str(tmp_path / "nope.ckpt")
        ) == 4

    def test_checkpoint_every_requires_checkpoint_flag(self):
        assert self._simulate("--checkpoint-every", "2") == 2

    def test_resilience_flags_require_flatdd(self, tmp_path):
        code = main(
            ["simulate", "--family", "ghz", "--qubits", "5",
             "--backend", "ddsim",
             "--checkpoint", str(tmp_path / "x"),
             "--checkpoint-every", "2"]
        )
        assert code == 2


class TestPeakMemoryGauge:
    @pytest.mark.parametrize("backend_flag", ["flatdd", "ddsim", "quantumpp"])
    def test_gauge_is_set(self, backend_flag):
        if backend_flag == "flatdd":
            res = FlatDDSimulator(FlatDDConfig(threads=2)).run(
                get_circuit("ghz", 5)
            )
        elif backend_flag == "ddsim":
            from repro.backends.ddsim import DDSimulator

            res = DDSimulator().run(get_circuit("ghz", 5))
        else:
            from repro.backends.statevector import StatevectorSimulator

            res = StatevectorSimulator().run(get_circuit("ghz", 5))
        gauge = res.metadata["obs"]["gauges"]["sim.mem.peak_bytes"]
        assert gauge["value"] > 0
        assert gauge["value"] == res.peak_memory_bytes
