"""Unit tests for sampling and measurement (array + DD-native)."""

import math

import numpy as np
import pytest

from repro.backends import StatevectorSimulator
from repro.circuits import get_circuit
from repro.common.errors import SimulationError
from repro.dd import DDPackage, vector_from_array, zero_state
from repro.dd.operations import mv_multiply
from repro.backends.gatecache import build_gate_dd
from repro.circuits import Gate
from repro.sampling import (
    dd_measure_qubit,
    dd_outcome_probability,
    dd_qubit_probability,
    marginal_probabilities,
    measure_qubit,
    most_likely,
    sample_counts,
    sample_from_dd,
)

from tests.conftest import random_state


class TestSampleCounts:
    def test_deterministic_state(self):
        state = np.zeros(8, dtype=complex)
        state[5] = 1.0
        counts = sample_counts(state, 100, np.random.default_rng(0))
        assert counts == {"101": 100}

    def test_distribution_matches_probabilities(self):
        state = random_state(4, seed=5)
        rng = np.random.default_rng(1)
        shots = 40_000
        counts = sample_counts(state, shots, rng, as_bitstrings=False)
        probs = np.abs(state) ** 2
        for idx, p in enumerate(probs):
            if p > 0.01:
                assert counts[idx] / shots == pytest.approx(p, abs=0.02)

    def test_total_shots_conserved(self):
        counts = sample_counts(
            random_state(3, seed=2), 512, np.random.default_rng(3)
        )
        assert sum(counts.values()) == 512

    def test_unnormalized_state_rejected(self):
        with pytest.raises(SimulationError):
            sample_counts(np.ones(4, dtype=complex), 10)

    def test_bad_shots_rejected(self):
        with pytest.raises(SimulationError):
            sample_counts(random_state(2, seed=0), 0)


class TestMarginals:
    def test_single_qubit_marginal(self):
        state = np.zeros(4, dtype=complex)
        state[0b01] = math.sqrt(0.25)
        state[0b10] = math.sqrt(0.75)
        m0 = marginal_probabilities(state, [0])
        np.testing.assert_allclose(m0, [0.75, 0.25])
        m1 = marginal_probabilities(state, [1])
        np.testing.assert_allclose(m1, [0.25, 0.75])

    def test_order_controls_bit_significance(self):
        state = np.zeros(4, dtype=complex)
        state[0b01] = 1.0
        np.testing.assert_allclose(
            marginal_probabilities(state, [1, 0]), [0, 1, 0, 0]
        )
        np.testing.assert_allclose(
            marginal_probabilities(state, [0, 1]), [0, 0, 1, 0]
        )

    def test_marginal_sums_to_one(self):
        state = random_state(5, seed=6)
        m = marginal_probabilities(state, [4, 2])
        assert m.sum() == pytest.approx(1.0)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(SimulationError):
            marginal_probabilities(random_state(3, seed=0), [1, 1])


class TestMostLikely:
    def test_ordering(self):
        state = np.array([0.1, 0.7, 0.2, 0.0], dtype=complex)
        state /= np.linalg.norm(state)
        top = most_likely(state, k=2)
        assert top[0][0] == "01"
        assert top[0][1] > top[1][1]


class TestMeasureQubit:
    def test_collapse_and_renormalize(self):
        state = np.array([1, 0, 0, 1], dtype=complex) / math.sqrt(2)
        rng = np.random.default_rng(7)
        outcome, collapsed = measure_qubit(state, 0, rng)
        expected = np.zeros(4, dtype=complex)
        expected[0b11 if outcome else 0b00] = 1.0
        np.testing.assert_allclose(collapsed, expected, atol=1e-12)
        assert np.linalg.norm(state) == pytest.approx(1.0)  # input untouched

    def test_statistics(self):
        state = np.array([math.sqrt(0.3), math.sqrt(0.7)], dtype=complex)
        rng = np.random.default_rng(11)
        ones = sum(measure_qubit(state, 0, rng)[0] for _ in range(4000))
        assert ones / 4000 == pytest.approx(0.7, abs=0.03)


class TestWeakSimulation:
    def _ghz_dd(self, n):
        pkg = DDPackage(n)
        state = zero_state(pkg)
        state = mv_multiply(pkg, build_gate_dd(pkg, Gate("h", (0,))), state)
        for q in range(n - 1):
            state = mv_multiply(
                pkg, build_gate_dd(pkg, Gate("cx", (q + 1,), (q,))), state
            )
        return pkg, state

    def test_ghz_samples_only_all_zero_or_all_one(self):
        pkg, state = self._ghz_dd(5)
        counts = sample_from_dd(pkg, state, 500, np.random.default_rng(0))
        assert set(counts) <= {"00000", "11111"}
        assert counts["00000"] + counts["11111"] == 500
        assert counts["00000"] == pytest.approx(250, abs=60)

    def test_matches_strong_sampling_distribution(self):
        c = get_circuit("supremacy", 6, cycles=6)
        ref = StatevectorSimulator().run(c).state
        pkg = DDPackage(6)
        state = vector_from_array(pkg, ref)
        counts = sample_from_dd(
            pkg, state, 30_000, np.random.default_rng(4), as_bitstrings=False
        )
        probs = np.abs(ref) ** 2
        for idx, p in enumerate(probs):
            if p > 0.02:
                assert counts[idx] / 30_000 == pytest.approx(p, abs=0.015)

    def test_outcome_probability_matches_amplitudes(self):
        arr = random_state(4, seed=12)
        pkg = DDPackage(4)
        state = vector_from_array(pkg, arr)
        for idx in range(16):
            assert dd_outcome_probability(pkg, state, idx) == pytest.approx(
                abs(arr[idx]) ** 2, abs=1e-10
            )

    def test_zero_state_rejected(self):
        pkg = DDPackage(3)
        with pytest.raises(SimulationError):
            sample_from_dd(pkg, pkg.zero_edge(), 10)


class TestDDMeasurement:
    def test_qubit_probability(self):
        arr = random_state(4, seed=13)
        pkg = DDPackage(4)
        state = vector_from_array(pkg, arr)
        for q in range(4):
            expected = sum(
                abs(arr[i]) ** 2 for i in range(16) if (i >> q) & 1
            )
            assert dd_qubit_probability(pkg, state, q) == pytest.approx(
                expected, abs=1e-9
            )

    def test_measurement_collapse_matches_array_semantics(self):
        arr = random_state(3, seed=14)
        pkg = DDPackage(3)
        state = vector_from_array(pkg, arr)
        rng = np.random.default_rng(5)
        outcome, collapsed = dd_measure_qubit(pkg, state, 1, rng)
        from repro.dd import vector_to_array

        collapsed_arr = vector_to_array(pkg, collapsed)
        # All amplitudes with the wrong bit must vanish; the rest rescale.
        for i in range(8):
            if ((i >> 1) & 1) != outcome:
                assert collapsed_arr[i] == pytest.approx(0, abs=1e-10)
        assert np.linalg.norm(collapsed_arr) == pytest.approx(1.0, abs=1e-9)

    def test_repeated_measurement_is_stable(self):
        arr = random_state(3, seed=15)
        pkg = DDPackage(3)
        state = vector_from_array(pkg, arr)
        rng = np.random.default_rng(6)
        outcome1, collapsed = dd_measure_qubit(pkg, state, 2, rng)
        # Measuring again must give the same outcome with certainty.
        p1 = dd_qubit_probability(pkg, collapsed, 2)
        assert p1 == pytest.approx(float(outcome1), abs=1e-9)

    def test_ghz_measurement_correlates_all_qubits(self):
        pkg = DDPackage(4)
        state = zero_state(pkg)
        state = mv_multiply(pkg, build_gate_dd(pkg, Gate("h", (0,))), state)
        for q in range(3):
            state = mv_multiply(
                pkg, build_gate_dd(pkg, Gate("cx", (q + 1,), (q,))), state
            )
        rng = np.random.default_rng(8)
        outcome, collapsed = dd_measure_qubit(pkg, state, 0, rng)
        for q in range(1, 4):
            assert dd_qubit_probability(pkg, collapsed, q) == pytest.approx(
                float(outcome), abs=1e-9
            )
