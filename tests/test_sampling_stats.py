"""Statistical correctness of weak/strong sampling (fixed seeds).

The existing sampling tests check single states and bookkeeping; these
run chi-squared goodness-of-fit tests of the *sampled distributions*
against exact probabilities computed by the statevector backend, for both
the array sampler (``repro.sampling.strong``) and the DD-native weak
sampler (``repro.sampling.weak``).  Seeds are fixed, so the chi-squared
statistic is deterministic -- a failure is a real distribution bug, not
sampler noise.
"""

import numpy as np
import pytest
from scipy import stats

from repro.backends import DDSimulator, StatevectorSimulator
from repro.circuits import get_circuit
from repro.sampling import sample_counts, sample_from_dd

#: Deterministic runs: reject only below this p-value.  With fixed seeds
#: this is a regression threshold, not a flaky statistical gate.
P_VALUE_FLOOR = 1e-3

#: Circuits with qualitatively different exact distributions: two-point
#: support (GHZ), uniform (QFT of |0>), and irregular (random, supremacy).
WORKLOADS = [
    ("ghz", 5, {}),
    ("qft", 4, {}),
    ("random", 5, {"gates": 40, "seed": 2}),
    ("supremacy", 4, {"cycles": 4, "seed": 9}),
]


def exact_probabilities(family, n, kwargs):
    state = StatevectorSimulator(mode="reshape").run(
        get_circuit(family, n, **kwargs)
    ).state
    return np.abs(state) ** 2


def chi_squared_p_value(counts, probs, shots):
    """Goodness-of-fit p-value with low-expectation bins pooled.

    Bins with expected count < 5 are merged into one pooled bin (the
    standard validity condition for the chi-squared approximation).
    """
    observed = np.zeros(probs.size)
    for key, c in counts.items():
        idx = int(key, 2) if isinstance(key, str) else int(key)
        observed[idx] = c
    expected = probs * shots
    # Impossible outcomes must never be sampled at all; excluding them
    # keeps the chi-squared statistic well-defined.
    impossible = expected < 1e-9
    assert observed[impossible].sum() == 0, "sampled a zero-probability bin"
    big = expected >= 5
    small = ~big & ~impossible
    obs_binned = list(observed[big])
    exp_binned = list(expected[big])
    if np.any(small):
        obs_binned.append(observed[small].sum())
        exp_binned.append(expected[small].sum())
    obs_arr = np.array(obs_binned)
    exp_arr = np.array(exp_binned)
    # Guard: chisquare requires matching totals (up to float fuzz).
    exp_arr *= obs_arr.sum() / exp_arr.sum()
    return stats.chisquare(obs_arr, exp_arr).pvalue


class TestStrongSamplingDistribution:
    @pytest.mark.parametrize(
        "family,n,kwargs", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_sample_counts_matches_exact_distribution(self, family, n, kwargs):
        probs = exact_probabilities(family, n, kwargs)
        shots = 20_000
        counts = sample_counts(
            probs_to_state(probs), shots, np.random.default_rng(42)
        )
        p = chi_squared_p_value(counts, probs, shots)
        assert p > P_VALUE_FLOOR, f"chi-squared p={p:.2e}"

    def test_rejects_wrong_distribution(self):
        """Power check: the test statistic must actually detect skew."""
        probs = exact_probabilities("ghz", 5, {})
        shots = 20_000
        counts = sample_counts(
            probs_to_state(probs), shots, np.random.default_rng(42)
        )
        uniform = np.full(probs.size, 1.0 / probs.size)
        p = chi_squared_p_value(counts, uniform, shots)
        assert p < 1e-6


class TestWeakSamplingDistribution:
    @pytest.mark.parametrize(
        "family,n,kwargs", WORKLOADS, ids=[w[0] for w in WORKLOADS]
    )
    def test_dd_sampler_matches_exact_distribution(self, family, n, kwargs):
        circuit = get_circuit(family, n, **kwargs)
        result = DDSimulator().run(circuit, keep_dd=True)
        pkg = result.metadata["package"]
        state_dd = result.metadata["state_dd"]
        shots = 20_000
        counts = sample_from_dd(
            pkg, state_dd, shots, np.random.default_rng(7)
        )
        probs = exact_probabilities(family, n, kwargs)
        p = chi_squared_p_value(counts, probs, shots)
        assert p > P_VALUE_FLOOR, f"chi-squared p={p:.2e}"

    def test_weak_and_strong_agree_on_totals(self):
        """Same circuit, both samplers: total variation distance is small."""
        circuit = get_circuit("random", 4, gates=30, seed=5)
        result = DDSimulator().run(circuit, keep_dd=True)
        shots = 20_000
        weak = sample_from_dd(
            result.metadata["package"], result.metadata["state_dd"],
            shots, np.random.default_rng(11),
        )
        state = StatevectorSimulator(mode="reshape").run(circuit).state
        strong = sample_counts(state, shots, np.random.default_rng(12))
        keys = set(weak) | set(strong)
        tvd = 0.5 * sum(
            abs(weak.get(k, 0) - strong.get(k, 0)) / shots for k in keys
        )
        assert tvd < 0.05


def probs_to_state(probs: np.ndarray) -> np.ndarray:
    """A state with the given |amplitude|^2 (random phases, fixed seed)."""
    rng = np.random.default_rng(123)
    phases = np.exp(1j * rng.uniform(0, 2 * np.pi, size=probs.size))
    return np.sqrt(probs) * phases
