"""Content-addressed result cache: LRU, bounds, counters, immutability."""

import numpy as np
import pytest

from repro.circuits import Circuit, get_circuit
from repro.common.config import FlatDDConfig
from repro.obs import result_cache_counters
from repro.serve import Job, ResultCache, config_digest

pytestmark = pytest.mark.serve


def _state(n=3, seed=0):
    g = np.random.default_rng(seed)
    v = g.normal(size=1 << n) + 1j * g.normal(size=1 << n)
    return (v / np.linalg.norm(v)).astype(np.complex128)


class TestLookup:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", _state())
        entry = cache.get("k")
        assert entry is not None and entry.hits == 1
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_put_replaces_and_keeps_byte_accounting(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", _state(3))
        cache.put("k", _state(4))
        assert len(cache) == 1
        assert cache.total_bytes == _state(4).nbytes

    def test_cached_state_is_read_only(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", _state())
        entry = cache.get("k")
        with pytest.raises((ValueError, RuntimeError)):
            entry.state[0] = 1.0


class TestEviction:
    def test_lru_by_entry_count(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", _state(seed=1))
        cache.put("b", _state(seed=2))
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", _state(seed=3))
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_byte_bound_evicts(self):
        nbytes = _state(3).nbytes
        cache = ResultCache(max_entries=100, max_bytes=2 * nbytes)
        cache.put("a", _state(3, seed=1))
        cache.put("b", _state(3, seed=2))
        cache.put("c", _state(3, seed=3))
        assert len(cache) == 2 and cache.total_bytes <= 2 * nbytes
        assert cache.evictions == 1

    def test_oversized_entry_is_uncacheable(self):
        cache = ResultCache(max_entries=4, max_bytes=8)
        assert cache.put("big", _state(5)) is None
        assert cache.uncacheable == 1 and len(cache) == 0

    def test_zero_entries_disables_cache(self):
        cache = ResultCache(max_entries=0)
        assert cache.put("k", _state()) is None
        assert cache.get("k") is None


class TestCounters:
    def test_stats_snapshot(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", _state())
        cache.get("k")
        cache.get("missing")
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1 and s["entries"] == 1
        assert s["hit_rate"] == pytest.approx(0.5)

    def test_obs_export(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", _state())
        cache.get("k")
        counters = result_cache_counters(cache)
        assert counters["serve.cache.hits"] == 1
        assert counters["serve.cache.entries"] == 1
        assert counters["serve.cache.bytes"] == _state().nbytes

    def test_clear(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", _state())
        cache.clear()
        assert len(cache) == 0 and cache.total_bytes == 0


class TestCacheKey:
    def test_same_circuit_same_key(self):
        c = get_circuit("ghz", 5)
        assert Job(circuit=c).cache_key() == Job(circuit=c).cache_key()

    def test_backend_and_circuit_split_keys(self):
        c = get_circuit("ghz", 5)
        assert (
            Job(circuit=c, backend="flatdd").cache_key()
            != Job(circuit=c, backend="ddsim").cache_key()
        )
        assert (
            Job(circuit=c).cache_key()
            != Job(circuit=get_circuit("qft", 5)).cache_key()
        )

    def test_sampling_request_does_not_split_keys(self):
        # Shots/seeds/priority are per-job concerns; the simulation
        # output they share must have one content address.
        c = get_circuit("ghz", 5)
        a = Job(circuit=c, shots=1000, sample_seed=1, priority=9)
        b = Job(circuit=c)
        assert a.cache_key() == b.cache_key()

    def test_config_digest_ignores_execution_knobs(self):
        inline = FlatDDConfig(threads=2, use_thread_pool=False)
        pooled = FlatDDConfig(threads=2, use_thread_pool=True)
        assert config_digest(inline) == config_digest(pooled)
        assert config_digest(inline) != config_digest(FlatDDConfig(threads=4))
        assert config_digest(None) == "default"
