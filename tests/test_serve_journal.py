"""Durable-serving tests: journal records, replay, and crash recovery."""

import json

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.common.errors import ServeError
from repro.serve import (
    Job,
    JobJournal,
    JobState,
    journal_segments,
    replay_journal,
    run_manifest,
)

pytestmark = pytest.mark.serve


def write_manifest(path, lines):
    with open(path, "w") as fh:
        for line in lines:
            fh.write(json.dumps(line) + "\n")
    return str(path)


def read_records(path):
    return [json.loads(line) for line in open(path) if line.strip()]


class TestJobJournal:
    def test_attach_records_submission_and_transitions(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        job = Job(get_circuit("ghz", 4), job_id="j1")
        state = np.zeros(16, dtype=np.complex128)
        state[0] = 1.0
        with JobJournal(path) as journal:
            journal.attach(job)
            job.transition(JobState.RUNNING)
            from repro.serve import JobResult

            job.result = JobResult(
                job_id="j1", backend="flatdd", state=state,
                runtime_seconds=0.01, cache_hit=False,
            )
            job.transition(JobState.DONE)
        records = read_records(path)
        assert [r["type"] for r in records] == [
            "submitted", "transition", "transition",
        ]
        assert records[0]["job_id"] == "j1"
        assert records[0]["cache_key"] == job.cache_key()
        done = records[2]
        assert done["to"] == "DONE"
        assert done["cache_hit"] is False
        decoded = np.frombuffer(
            __import__("base64").b64decode(done["state_b64"]),
            dtype=np.complex128,
        )
        assert np.array_equal(decoded, state)

    def test_records_carry_both_clocks(self, tmp_path):
        # Wall time ("ts") correlates across processes; monotonic time
        # ("ts_mono") yields durations immune to clock steps.
        path = str(tmp_path / "j.jsonl")
        job = Job(get_circuit("ghz", 3), job_id="clocks")
        with JobJournal(path) as journal:
            journal.attach(job)
            job.transition(JobState.RUNNING)
        for record in read_records(path):
            assert record["ts"] > 1e9, record["type"]
            assert 0 < record["ts_mono"] < 1e9, record["type"]
        a, b = read_records(path)
        assert b["ts_mono"] >= a["ts_mono"]

    def test_failed_transition_carries_error(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        job = Job(get_circuit("ghz", 3), job_id="boom")
        with JobJournal(path) as journal:
            journal.attach(job)
            job.transition(JobState.RUNNING)
            job.error = "kaput"
            job.transition(JobState.FAILED)
        failed = read_records(path)[-1]
        assert failed["to"] == "FAILED"
        assert failed["error"] == "kaput"

    def test_resume_mode_appends(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with JobJournal(path) as journal:
            journal.append({"type": "submitted", "job_id": "a"})
        with JobJournal(path, resume=True) as journal:
            journal.append({"type": "submitted", "job_id": "b"})
        assert [r["job_id"] for r in read_records(path)] == ["a", "b"]

    def test_truncate_mode_overwrites(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with JobJournal(path) as journal:
            journal.append({"type": "submitted", "job_id": "old"})
        with JobJournal(path) as journal:
            journal.append({"type": "submitted", "job_id": "new"})
        assert [r["job_id"] for r in read_records(path)] == ["new"]


class TestReplayJournal:
    def test_last_write_wins(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            for rec in [
                {"type": "submitted", "job_id": "a"},
                {"type": "submitted", "job_id": "b"},
                {"type": "transition", "job_id": "a",
                 "from": "PENDING", "to": "RUNNING"},
                {"type": "transition", "job_id": "a",
                 "from": "RUNNING", "to": "DONE", "state_b64": ""},
            ]:
                fh.write(json.dumps(rec) + "\n")
        recovery = replay_journal(path)
        assert recovery.job_states == {"a": "DONE", "b": "PENDING"}
        assert recovery.counts == {"DONE": 1, "PENDING": 1}
        assert "a" in recovery.done_payloads

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "submitted", "job_id": "a"}) + "\n")
            fh.write('{"type": "transition", "job_id": "a", "to": "DO')
        recovery = replay_journal(path)
        assert recovery.truncated_records == 1
        assert recovery.job_states == {"a": "PENDING"}

    def test_mid_file_corruption_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write("{broken\n")
            fh.write(json.dumps({"type": "submitted", "job_id": "a"}) + "\n")
        with pytest.raises(ServeError, match="corrupt"):
            replay_journal(path)

    def test_missing_journal_rejected(self, tmp_path):
        with pytest.raises(ServeError, match="not exist"):
            replay_journal(str(tmp_path / "absent.jsonl"))

    def test_decode_state_requires_done_payload(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "submitted", "job_id": "a"}) + "\n")
        recovery = replay_journal(path)
        with pytest.raises(ServeError, match="no DONE state"):
            recovery.decode_state("a")


class TestDurableManifestServing:
    MANIFEST = [
        {"family": "ghz", "qubits": 5},
        {"family": "qft", "qubits": 4},
        {"family": "random", "qubits": 4, "repeat": 2},
    ]

    def test_deterministic_manifest_ids(self, tmp_path):
        manifest = write_manifest(tmp_path / "m.jsonl", self.MANIFEST)
        path = str(tmp_path / "j.jsonl")
        report, _ = run_manifest(manifest, journal_path=path)
        assert report.states.get("DONE") == 4
        submitted = {
            r["job_id"] for r in read_records(path)
            if r["type"] == "submitted"
        }
        # Line-derived ids are stable across processes, so a resumed run
        # can match journaled outcomes to re-parsed manifest jobs.
        assert submitted == {"m0001", "m0002", "m0003.0", "m0003.1"}

    def test_journal_records_every_outcome(self, tmp_path):
        manifest = write_manifest(tmp_path / "m.jsonl", self.MANIFEST)
        path = str(tmp_path / "j.jsonl")
        run_manifest(manifest, journal_path=path)
        recovery = replay_journal(path)
        assert recovery.counts == {"DONE": 4}
        state = recovery.decode_state("m0001")
        assert state.size == 32

    def test_resume_serves_done_jobs_from_cache(self, tmp_path):
        manifest = write_manifest(tmp_path / "m.jsonl", self.MANIFEST)
        path = str(tmp_path / "j.jsonl")
        first, _ = run_manifest(manifest, journal_path=path)
        second, _ = run_manifest(
            manifest, journal_path=path, resume=True
        )
        assert second.states.get("DONE") == first.states.get("DONE") == 4
        assert second.recovery is not None
        assert second.recovery["by_state"] == {"DONE": 4}
        assert second.recovery["cache_seeded"] >= 1
        # Every DONE in the resumed run must be a cache hit: nothing
        # re-executes.
        second_half = read_records(path)[len(read_records(path)) // 2:]
        fresh = [
            r for r in read_records(path)
            if r["type"] == "transition" and r["to"] == "DONE"
            and not r.get("cache_hit")
        ]
        # Only the first run's unique simulations are non-cache-hit.
        assert len(fresh) == 3
        assert second_half  # sanity: the resumed run journaled something

    def test_resumed_states_identical(self, tmp_path):
        manifest = write_manifest(tmp_path / "m.jsonl", self.MANIFEST)
        j1 = str(tmp_path / "j1.jsonl")
        j2 = str(tmp_path / "j2.jsonl")
        run_manifest(manifest, journal_path=j1)
        run_manifest(manifest, journal_path=j2)
        r1, r2 = replay_journal(j1), replay_journal(j2)
        for job_id in r1.job_states:
            assert np.array_equal(
                r1.decode_state(job_id), r2.decode_state(job_id)
            )

    def test_report_text_includes_recovery_line(self, tmp_path):
        manifest = write_manifest(tmp_path / "m.jsonl", self.MANIFEST)
        path = str(tmp_path / "j.jsonl")
        run_manifest(manifest, journal_path=path)
        report, _ = run_manifest(manifest, journal_path=path, resume=True)
        assert "recovery: journal replayed" in report.format_text()


class TestJournalSegments:
    """writer_id/seq stamping and multi-segment deterministic merge."""

    def test_records_carry_writer_id_and_monotonic_seq(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        job = Job(get_circuit("ghz", 3), job_id="j1")
        with JobJournal(path, writer_id="w7") as journal:
            journal.attach(job)
            job.transition(JobState.RUNNING)
            job.error = "boom"
            job.transition(JobState.FAILED)
        records = read_records(path)
        assert [r["writer_id"] for r in records] == ["w7"] * 3
        assert [r["seq"] for r in records] == [0, 1, 2]

    def test_observe_journals_transitions_without_submission(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        job = Job(get_circuit("ghz", 3), job_id="j1")
        with JobJournal(path) as journal:
            journal.observe(job)
            job.transition(JobState.RUNNING)
        records = read_records(path)
        assert [r["type"] for r in records] == ["transition"]

    def test_segment_discovery_order(self, tmp_path):
        base = str(tmp_path / "wal.jsonl")
        for p in (base, base + ".w1.jsonl", base + ".w0.jsonl"):
            with open(p, "w"):
                pass
        assert journal_segments(base) == [
            base, base + ".w0.jsonl", base + ".w1.jsonl"
        ]
        # A missing broker file drops out instead of failing discovery.
        import os

        os.remove(base)
        assert journal_segments(base) == [
            base + ".w0.jsonl", base + ".w1.jsonl"
        ]

    def _write_segment(self, path, writer_id, records):
        with JobJournal(path, writer_id=writer_id) as journal:
            for record in records:
                journal.append(record)

    def test_merged_replay_is_later_wins_across_segments(self, tmp_path):
        broker = str(tmp_path / "wal.jsonl")
        worker = broker + ".w0.jsonl"
        # Broker submits at t=1; the worker journals DONE at t=2; the
        # broker never saw the result (killed before the frame landed).
        self._write_segment(broker, "main", [
            {"type": "submitted", "job_id": "a", "ts_mono": 1.0},
        ])
        self._write_segment(worker, "w0", [
            {"type": "transition", "job_id": "a", "from": "PENDING",
             "to": "RUNNING", "ts_mono": 2.0},
            {"type": "transition", "job_id": "a", "from": "RUNNING",
             "to": "DONE", "ts_mono": 3.0, "cache_key": "k"},
        ])
        recovery = replay_journal([broker, worker])
        assert recovery.job_states == {"a": "DONE"}
        assert recovery.done_payloads["a"]["cache_key"] == "k"

    def test_merged_replay_deterministic_regardless_of_input_order(
        self, tmp_path
    ):
        broker = str(tmp_path / "wal.jsonl")
        w0 = broker + ".w0.jsonl"
        w1 = broker + ".w1.jsonl"
        self._write_segment(broker, "main", [
            {"type": "submitted", "job_id": "a", "ts_mono": 1.0},
            {"type": "submitted", "job_id": "b", "ts_mono": 1.5},
        ])
        self._write_segment(w0, "w0", [
            {"type": "transition", "job_id": "a", "from": "RUNNING",
             "to": "DONE", "ts_mono": 2.0},
        ])
        self._write_segment(w1, "w1", [
            {"type": "transition", "job_id": "a", "from": "RUNNING",
             "to": "FAILED", "ts_mono": 4.0},
            {"type": "transition", "job_id": "b", "from": "RUNNING",
             "to": "DONE", "ts_mono": 3.0},
        ])
        import itertools

        outcomes = [
            replay_journal(list(order)).job_states
            for order in itertools.permutations([broker, w0, w1])
        ]
        assert all(o == outcomes[0] for o in outcomes)
        # ts_mono 4.0 is the latest word on job "a".
        assert outcomes[0] == {"a": "FAILED", "b": "DONE"}

    def test_single_path_replay_keeps_file_order(self, tmp_path):
        # Back-compat: one file replays in write order even when ts_mono
        # is absent or out of order (pre-segment journals had no seq).
        path = str(tmp_path / "wal.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "submitted", "job_id": "a"}) + "\n")
            fh.write(json.dumps(
                {"type": "transition", "job_id": "a", "from": "PENDING",
                 "to": "RUNNING", "ts_mono": 9.0}) + "\n")
            fh.write(json.dumps(
                {"type": "transition", "job_id": "a", "from": "RUNNING",
                 "to": "DONE", "ts_mono": 1.0}) + "\n")
        assert replay_journal(path).job_states == {"a": "DONE"}


class TestJournalDurabilityPolicy:
    def test_fsync_opt_in_counts_and_persists(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        path = str(tmp_path / "wal.jsonl")
        journal = JobJournal(path, fsync=True, registry=registry)
        journal.append({"type": "transition", "job_id": "a", "to": "DONE"})
        journal.append({"type": "transition", "job_id": "b", "to": "DONE"})
        journal.close()
        assert registry.counter("serve.journal.fsyncs").value == 2
        assert len(read_records(path)) == 2

    def test_default_skips_fsync(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        journal = JobJournal(
            str(tmp_path / "wal.jsonl"), registry=registry
        )
        journal.append({"type": "transition", "job_id": "a", "to": "DONE"})
        journal.close()
        assert registry.counter("serve.journal.fsyncs").value == 0

    def test_write_error_degrades_journal_not_the_batch(self, tmp_path):
        # A failing disk (injected via the chaos fault hook) disables the
        # journal -- loudly, with a counter -- instead of crashing the
        # serve batch; later appends are silent no-ops.
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        path = str(tmp_path / "wal.jsonl")
        journal = JobJournal(path, registry=registry)
        journal.append({"type": "transition", "job_id": "a", "to": "DONE"})

        def full_disk(j, record):
            raise OSError(28, "injected disk-full")

        JobJournal.fault_hook = full_disk
        try:
            journal.append(
                {"type": "transition", "job_id": "b", "to": "DONE"}
            )
        finally:
            JobJournal.fault_hook = None
        journal.append({"type": "transition", "job_id": "c", "to": "DONE"})
        journal.close()
        assert journal.write_errors == 1
        assert (
            registry.counter("serve.journal.write_errors").value == 1
        )
        records = read_records(path)
        assert [r["job_id"] for r in records] == ["a"]
