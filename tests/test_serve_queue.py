"""Admission control, priority ordering, and batch planning tests."""

import pytest

from repro.circuits import Circuit, get_circuit
from repro.common.errors import AdmissionError
from repro.serve import BatchScheduler, Job, JobQueue, JobState

pytestmark = pytest.mark.serve


def _job(num_qubits=3, priority=0, deadline=None, tag="x", **kwargs) -> Job:
    c = Circuit(num_qubits, name=tag)
    c.h(0)
    for q in range(1, num_qubits):
        c.cx(q - 1, q)
    c.rz(0.1 * hash(tag) % 7, 0)
    return Job(
        circuit=c, priority=priority, deadline_seconds=deadline, **kwargs
    )


class TestAdmission:
    def test_assigns_ids_and_seq(self):
        q = JobQueue(capacity=4)
        a = q.submit(_job())
        b = q.submit(_job())
        assert a.job_id and b.job_id and a.job_id != b.job_id
        assert a.seq < b.seq
        assert q.admission_counts["accepted"] == 2

    def test_queue_full_rejects_with_reason(self):
        q = JobQueue(capacity=2)
        q.submit(_job())
        q.submit(_job())
        with pytest.raises(AdmissionError) as exc:
            q.submit(_job())
        assert exc.value.reason == "queue_full"
        assert q.admission_counts["queue_full"] == 1

    def test_backpressure_releases_after_pop(self):
        q = JobQueue(capacity=1)
        q.submit(_job())
        assert q.try_submit(_job()) == (False, "queue_full")
        assert q.pop() is not None
        accepted, reason = q.try_submit(_job())
        assert accepted and reason is None

    def test_oversized_circuit_rejected(self):
        q = JobQueue(capacity=8, max_qubits=4, max_gates=3)
        with pytest.raises(AdmissionError) as exc:
            q.submit(_job(num_qubits=6))
        assert exc.value.reason == "too_many_qubits"
        ok, reason = q.try_submit(_job(num_qubits=4))
        assert not ok and reason == "too_many_gates"

    def test_duplicate_job_id_rejected(self):
        q = JobQueue(capacity=8)
        q.submit(_job(job_id="same"))
        ok, reason = q.try_submit(_job(job_id="same"))
        assert not ok and reason == "duplicate_job_id"

    def test_non_pending_job_rejected(self):
        q = JobQueue(capacity=8)
        job = _job()
        job.transition(JobState.CANCELLED)
        with pytest.raises(AdmissionError) as exc:
            q.submit(job)
        assert exc.value.reason == "not_pending"


class TestOrdering:
    def test_priority_order(self):
        q = JobQueue(capacity=8)
        low = q.submit(_job(priority=0))
        high = q.submit(_job(priority=10))
        mid = q.submit(_job(priority=5))
        assert [q.pop() for _ in range(3)] == [high, mid, low]

    def test_deadline_breaks_priority_ties(self):
        q = JobQueue(capacity=8)
        later = q.submit(_job(priority=1, deadline=60.0))
        sooner = q.submit(_job(priority=1, deadline=5.0))
        unlimited = q.submit(_job(priority=1))
        assert [q.pop() for _ in range(3)] == [sooner, later, unlimited]

    def test_fifo_within_equal_envelope(self):
        q = JobQueue(capacity=8)
        first = q.submit(_job())
        second = q.submit(_job())
        assert q.pop() is first and q.pop() is second

    def test_drain_pending_returns_scheduling_order(self):
        q = JobQueue(capacity=8)
        a = q.submit(_job(priority=1))
        b = q.submit(_job(priority=9))
        drained = q.drain_pending()
        assert drained == [b, a]
        assert len(q) == 0 and q.pop() is None


class TestCancellation:
    def test_cancel_pending_job(self):
        q = JobQueue(capacity=8)
        job = q.submit(_job())
        assert q.cancel(job.job_id)
        assert job.state is JobState.CANCELLED
        assert q.pop() is None  # tombstone skipped

    def test_cancel_unknown_or_started(self):
        q = JobQueue(capacity=8)
        job = q.submit(_job())
        assert not q.cancel("nope")
        popped = q.pop()
        popped.transition(JobState.RUNNING)
        assert not q.cancel(popped.job_id)


class TestScheduler:
    def test_groups_by_cache_key(self):
        sched = BatchScheduler()
        dup = get_circuit("ghz", 5)
        jobs = [Job(circuit=dup), Job(circuit=get_circuit("qft", 5)),
                Job(circuit=dup)]
        for i, j in enumerate(jobs):
            j.seq = i
        groups = sched.plan(jobs)
        assert sorted(len(g) for g in groups) == [1, 2]
        assert sched.jobs_deduplicated == 1
        assert sched.groups_planned == 2

    def test_group_inherits_most_urgent_envelope(self):
        sched = BatchScheduler()
        dup = get_circuit("ghz", 5)
        urgent_dup = Job(circuit=dup, priority=9)
        lazy_dup = Job(circuit=dup, priority=0)
        other = Job(circuit=get_circuit("qft", 5), priority=5)
        for i, j in enumerate([lazy_dup, other, urgent_dup]):
            j.seq = i
        groups = sched.plan([lazy_dup, other, urgent_dup])
        # The duplicate pair rides on the urgent member's priority 9.
        assert groups[0].jobs == [lazy_dup, urgent_dup]
        assert groups[0].priority == 9
        assert groups[1].jobs == [other]

    def test_backend_splits_groups(self):
        sched = BatchScheduler()
        c = get_circuit("ghz", 5)
        a = Job(circuit=c, backend="flatdd")
        b = Job(circuit=c, backend="quantumpp")
        for i, j in enumerate([a, b]):
            j.seq = i
        assert len(sched.plan([a, b])) == 2
