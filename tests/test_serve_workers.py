"""Worker-pool fault tolerance: retry, permanent failure, timeouts.

Reuses the PR-2 fault-injection library (``repro.verify.fuzz.faults``):
``transient-crash`` raises for the first N gate-DD constructions then
heals (the retry path must absorb it), ``permanent-crash`` raises
forever (the retry budget must exhaust into FAILED without taking the
pool down with it).
"""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.common.config import ServeConfig
from repro.serve import Job, JobState, SimulationService, clamp_threads
from repro.verify.fuzz import CRASH_FAULTS, plant_fault

pytestmark = pytest.mark.serve

#: Zero-wait retry policy so fault tests spend no wall time backing off.
FAST_RETRY = dict(retry_base_delay=0.0, retry_max_delay=0.0)


class TestClampThreads:
    @pytest.mark.parametrize(
        "threads,qubits,expected",
        [(4, 8, 4), (4, 2, 2), (4, 1, 1), (8, 3, 4), (3, 8, 2), (1, 8, 1)],
    )
    def test_clamp(self, threads, qubits, expected):
        assert clamp_threads(threads, qubits) == expected


class TestTransientFaults:
    def test_worker_retries_then_succeeds(self):
        svc = SimulationService(threads=2, max_retries=3, **FAST_RETRY)
        circuit = get_circuit("ghz", 6)
        job_id = svc.submit(circuit)
        with plant_fault("transient-crash"):  # raises twice, then heals
            report = svc.drain()
        job = svc.poll(job_id)
        assert job.state is JobState.DONE
        assert job.attempts == 3  # two faulted attempts + the success
        assert report.retries == 2
        assert report.ok and report.states == {"DONE": 1}
        # The retried result is still correct.
        expected = np.zeros(64, dtype=complex)
        expected[0] = expected[-1] = 1 / np.sqrt(2)
        np.testing.assert_allclose(
            svc.result(job_id).state, expected, atol=1e-12
        )
        svc.close()

    def test_retry_budget_zero_fails_fast(self):
        svc = SimulationService(threads=2, max_retries=0, **FAST_RETRY)
        job_id = svc.submit(get_circuit("ghz", 6))
        with plant_fault("transient-crash"):
            report = svc.drain()
        job = svc.poll(job_id)
        assert job.state is JobState.FAILED
        assert job.attempts == 1
        assert "transient fault" in job.error
        assert not report.ok
        svc.close()

    def test_backoff_delays_grow_exponentially(self):
        sleeps = []
        svc = SimulationService(
            threads=2, max_retries=4,
            retry_base_delay=0.01, retry_max_delay=0.04,
        )
        svc.pool._sleep = sleeps.append
        with plant_fault(None):
            with CRASH_FAULTS["transient-crash"](times=4):
                svc.submit(get_circuit("ghz", 5))
                svc.drain()
        assert sleeps == [0.01, 0.02, 0.04, 0.04]
        svc.close()


class TestPermanentFaults:
    def test_permanent_failure_does_not_poison_the_pool(self):
        # One DD-backed job crashes on every attempt; the statevector
        # jobs behind it in the same drain must still complete.
        svc = SimulationService(threads=2, max_retries=1, **FAST_RETRY)
        bad = svc.submit(get_circuit("ghz", 6), priority=10)  # runs first
        good = [
            svc.submit(get_circuit("qft", 5), backend="quantumpp")
            for _ in range(3)
        ]
        with plant_fault("permanent-crash"):  # only DD paths affected
            report = svc.drain()
        assert svc.poll(bad).state is JobState.FAILED
        assert svc.poll(bad).attempts == 2  # initial + 1 retry
        for job_id in good:
            assert svc.poll(job_id).state is JobState.DONE
        assert report.states == {"DONE": 3, "FAILED": 1}
        assert report.internal_errors == 0
        # The pool survives: a fresh submission afterwards works.
        job_id = svc.submit(get_circuit("ghz", 6))
        assert svc.drain().states == {"DONE": 1}
        assert svc.poll(job_id).state is JobState.DONE
        svc.close()

    def test_invalid_backend_fails_without_retries(self):
        svc = SimulationService(threads=2, max_retries=3, **FAST_RETRY)
        job = Job(circuit=get_circuit("ghz", 5), backend="flatdd")
        job.backend = "warp-drive"  # bypass constructor-time checks
        job_id = svc.submit(job)
        report = svc.drain()
        polled = svc.poll(job_id)
        assert polled.state is JobState.FAILED
        assert polled.attempts == 1  # ReproError = permanent, no retries
        assert "permanent" in polled.error
        assert report.retries == 0
        svc.close()

    def test_failed_attempts_never_populate_the_cache(self):
        svc = SimulationService(threads=2, max_retries=0, **FAST_RETRY)
        circuit = get_circuit("ghz", 6)
        first = svc.submit(circuit)
        with plant_fault("permanent-crash"):
            svc.drain()
        assert svc.poll(first).state is JobState.FAILED
        assert len(svc.cache) == 0
        # Resubmitting after the fault clears succeeds from scratch.
        second = svc.submit(circuit)
        svc.drain()
        assert svc.poll(second).state is JobState.DONE
        svc.close()


class TestTimeouts:
    def test_expired_deadline_times_out_before_running(self):
        svc = SimulationService(threads=2, **FAST_RETRY)
        # transient-crash would force retries; an expired deadline must
        # win before the first attempt even starts.
        job = Job(circuit=get_circuit("ghz", 6), deadline_seconds=1e-12)
        job_id = svc.submit(job)
        report = svc.drain()
        polled = svc.poll(job_id)
        assert polled.state is JobState.TIMEOUT
        assert polled.attempts == 0
        assert "deadline" in polled.error
        assert report.states == {"TIMEOUT": 1}
        svc.close()

    def test_wall_clock_timeout_after_attempt(self):
        # quantumpp has no cooperative max_seconds; the worker's
        # wall-clock check after the attempt must catch the overrun.
        svc = SimulationService(threads=2, **FAST_RETRY)
        job = Job(
            circuit=get_circuit("qft", 8),
            backend="quantumpp",
            deadline_seconds=1e-7,
        )
        job_id = svc.submit(job)
        svc.drain()
        assert svc.poll(job_id).state is JobState.TIMEOUT
        svc.close()

    def test_service_default_deadline_applies(self):
        svc = SimulationService(
            threads=2, default_deadline_seconds=1e-12, **FAST_RETRY
        )
        job_id = svc.submit(get_circuit("ghz", 5))
        svc.drain()
        assert svc.poll(job_id).state is JobState.TIMEOUT
        svc.close()


class TestIsolation:
    def test_internal_error_quarantines_group_not_pool(self):
        from repro.serve.scheduler import BatchGroup

        svc = SimulationService(threads=2, **FAST_RETRY)
        healthy = Job(circuit=get_circuit("ghz", 5))
        healthy.seq = 0
        # A group whose job is already terminal trips the state machine
        # inside the worker -- an internal bug, not a job failure.
        broken = Job(circuit=get_circuit("qft", 5))
        broken.seq = 1
        broken.transition(JobState.CANCELLED)
        broken.state = JobState.DONE  # corrupt: DONE with no result
        groups = [
            BatchGroup(key=broken.cache_key(), jobs=[broken]),
            BatchGroup(key=healthy.cache_key(), jobs=[healthy]),
        ]
        svc.pool.execute_groups(groups, svc.cache)
        assert svc.pool.internal_errors == 1
        assert healthy.state is JobState.DONE
        svc.close()


def _sweep_template(n=3):
    from repro.circuits import Circuit

    c = Circuit(n, name="sweep-serve")
    for q in range(n):
        c.h(q)
    for q in range(n):
        c.ry(0.0, q)
    return c


class TestSweepJobs:
    def test_sweep_rows_match_single_shot_jobs(self):
        c = _sweep_template()
        rows = [
            tuple(0.1 * (k + 1) + 0.2 * q for q in range(3))
            for k in range(3)
        ]
        svc = SimulationService(threads=2, **FAST_RETRY)
        sweep_id = svc.submit(Job(circuit=c, param_sets=rows))
        single_ids = [svc.submit(c.bind(row)) for row in rows]
        report = svc.drain()
        assert report.ok
        sweep = svc.result(sweep_id)
        assert sweep.state.shape == (3, 8)
        for i, job_id in enumerate(single_ids):
            assert np.array_equal(
                sweep.state[i], svc.result(job_id).state
            )
        svc.close()

    def test_sweep_rows_seed_the_shared_cache(self):
        c = _sweep_template()
        rows = [(0.1, 0.2, 0.3), (0.4, 0.5, 0.6)]
        svc = SimulationService(threads=2, **FAST_RETRY)
        svc.submit(Job(circuit=c, param_sets=rows))
        svc.drain()
        # A later single-shot submission of a bound row is a cache hit.
        job_id = svc.submit(c.bind(rows[1]))
        svc.drain()
        assert svc.result(job_id).cache_hit
        # ...and a later identical sweep assembles entirely from cache.
        sweep_id = svc.submit(Job(circuit=c, param_sets=rows))
        svc.drain()
        result = svc.result(sweep_id)
        assert result.cache_hit
        assert result.state.shape == (2, 8)
        svc.close()

    def test_single_shot_results_serve_sweep_rows(self):
        c = _sweep_template()
        rows = [(0.7, 0.1, 0.4)]
        svc = SimulationService(threads=2, **FAST_RETRY)
        single_id = svc.submit(c.bind(rows[0]))
        svc.drain()
        sweep_id = svc.submit(Job(circuit=c, param_sets=rows))
        svc.drain()
        result = svc.result(sweep_id)
        assert result.cache_hit
        assert np.array_equal(result.state[0], svc.result(single_id).state)
        svc.close()

    def test_shots_conflict_rejected(self):
        from repro.common.errors import ServeError

        with pytest.raises(ServeError, match="cannot sample"):
            Job(circuit=_sweep_template(), param_sets=[(0, 0, 0)], shots=10)

    def test_empty_param_sets_rejected(self):
        from repro.common.errors import ServeError

        with pytest.raises(ServeError, match="at least one"):
            Job(circuit=_sweep_template(), param_sets=[])

    def test_unsupported_backend_fails_permanently(self):
        svc = SimulationService(threads=2, **FAST_RETRY)
        job_id = svc.submit(
            Job(
                circuit=_sweep_template(),
                backend="quantumpp",
                param_sets=[(0.1, 0.2, 0.3)],
            )
        )
        svc.drain()
        job = svc.poll(job_id)
        assert job.state is JobState.FAILED
        assert job.attempts == 1  # permanent: no retries burned
        assert "does not support sweep jobs" in job.error
        svc.close()
