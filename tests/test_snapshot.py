"""Snapshot format tests: exact DD round-trips and rejection paths."""

import json

import numpy as np
import pytest

from repro.backends.gatecache import GateDDCache
from repro.circuits import Circuit, get_circuit
from repro.common.config import FlatDDConfig, config_digest
from repro.common.errors import CheckpointError
from repro.dd import DDPackage
from repro.dd.io import deserialize_vector_dd, serialize_vector_dd
from repro.dd.node import ZERO_EDGE
from repro.dd.operations import mv_multiply
from repro.dd.vector import node_count, vector_to_array, zero_state
from repro.resilience import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    Snapshot,
    decode_array_state,
    read_snapshot,
    snapshot_array_phase,
    snapshot_dd_phase,
    validate_snapshot,
    write_snapshot,
)


def simulate_dd(circuit: Circuit):
    """Run a circuit purely in the DD representation."""
    pkg = DDPackage(circuit.num_qubits)
    gates = GateDDCache(pkg)
    state = zero_state(pkg)
    for gate in circuit.gates:
        state = mv_multiply(pkg, gates.get(gate), state)
    return pkg, state


def clifford_t_circuit(n: int = 5) -> Circuit:
    """A fixed Clifford+T circuit (irrational amplitudes, rich sharing)."""
    c = Circuit(n, name="clifford_t")
    for q in range(n):
        c.h(q)
    for q in range(n - 1):
        c.cx(q, q + 1)
        c.t(q)
    c.s(0)
    c.t(n - 1)
    c.h(n // 2)
    c.cx(n - 1, 0)
    return c


class TestEdgeWalkRoundTrip:
    @pytest.mark.parametrize("family,n", [("ghz", 6), ("qft", 5)])
    def test_generator_circuits(self, family, n):
        pkg, e = simulate_dd(get_circuit(family, n))
        doc = serialize_vector_dd(pkg, e)
        fresh = DDPackage(n)
        restored = deserialize_vector_dd(fresh, doc)
        assert node_count(restored) == node_count(e)
        a = vector_to_array(pkg, e, n)
        b = vector_to_array(fresh, restored, n)
        assert np.array_equal(a, b)

    def test_clifford_t(self):
        circuit = clifford_t_circuit()
        pkg, e = simulate_dd(circuit)
        doc = serialize_vector_dd(pkg, e)
        fresh = DDPackage(circuit.num_qubits)
        restored = deserialize_vector_dd(fresh, doc)
        assert np.array_equal(
            vector_to_array(pkg, e, circuit.num_qubits),
            vector_to_array(fresh, restored, circuit.num_qubits),
        )

    def test_weights_and_idx_survive_reserialization(self):
        pkg, e = simulate_dd(get_circuit("random", 6))
        doc = serialize_vector_dd(pkg, e)
        fresh = DDPackage(6)
        restored = deserialize_vector_dd(fresh, doc)
        # Bit-exact weights (float.hex) and creation indices both survive,
        # so a second serialization is byte-for-byte the first.
        assert serialize_vector_dd(fresh, restored) == doc

    def test_sharing_survives(self):
        pkg, e = simulate_dd(get_circuit("ghz", 8))
        doc = serialize_vector_dd(pkg, e)
        # GHZ has one node per level; a serializer that unrolled sharing
        # into a tree would emit exponentially more rows.
        assert len(doc["nodes"]) == node_count(e)

    def test_zero_edge(self):
        pkg = DDPackage(3)
        doc = serialize_vector_dd(pkg, ZERO_EDGE)
        assert doc["nodes"] == []
        assert deserialize_vector_dd(DDPackage(3), doc).is_zero


class TestSnapshotFile:
    def _dd_snapshot(self, tmp_path):
        circuit = get_circuit("ghz", 5)
        pkg, e = simulate_dd(circuit)

        class _Monitor:
            @staticmethod
            def state_dict():
                return {"v": (0.5).hex(), "i": 3}

        snap = snapshot_dd_phase(
            pkg, e, _Monitor, 4, circuit,
            config_digest(FlatDDConfig()),
        )
        path = str(tmp_path / "snap.json")
        write_snapshot(path, snap)
        return circuit, snap, path

    def test_write_read_round_trip(self, tmp_path):
        _, snap, path = self._dd_snapshot(tmp_path)
        loaded = read_snapshot(path)
        assert loaded == snap

    def test_validate_accepts_matching_circuit(self, tmp_path):
        circuit, _, path = self._dd_snapshot(tmp_path)
        loaded = read_snapshot(path)
        validate_snapshot(
            loaded, circuit, config_digest(FlatDDConfig()), path
        )

    def test_array_phase_round_trip(self, tmp_path):
        circuit = get_circuit("qft", 4)
        pkg = DDPackage(4)
        rng = np.random.default_rng(7)
        state = rng.normal(size=16) + 1j * rng.normal(size=16)
        state /= np.linalg.norm(state)
        snap = snapshot_array_phase(
            pkg, state, 3, 2, circuit, config_digest(FlatDDConfig())
        )
        path = str(tmp_path / "arr.json")
        write_snapshot(path, snap)
        loaded = read_snapshot(path)
        assert loaded.phase == "array"
        assert loaded.gate_cursor == 2
        assert int(loaded.data["convert_at"]) == 3
        assert np.array_equal(decode_array_state(loaded), state)

    def test_decode_array_rejects_dd_phase(self, tmp_path):
        _, snap, _ = self._dd_snapshot(tmp_path)
        with pytest.raises(CheckpointError, match="array-phase"):
            decode_array_state(snap)

    def test_corrupted_checksum_rejected(self, tmp_path):
        _, _, path = self._dd_snapshot(tmp_path)
        doc = json.loads(open(path).read())
        doc["payload"]["gate_cursor"] += 1  # tamper without re-checksumming
        open(path, "w").write(json.dumps(doc))
        with pytest.raises(CheckpointError, match="checksum"):
            read_snapshot(path)

    def test_version_mismatch_rejected(self, tmp_path):
        _, _, path = self._dd_snapshot(tmp_path)
        doc = json.loads(open(path).read())
        doc["version"] = SNAPSHOT_VERSION + 1
        open(path, "w").write(json.dumps(doc))
        with pytest.raises(CheckpointError, match="version"):
            read_snapshot(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.json")
        open(path, "w").write(json.dumps({"magic": "nope", "version": 1}))
        with pytest.raises(CheckpointError, match="magic"):
            read_snapshot(path)
        assert SNAPSHOT_MAGIC != "nope"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="not exist"):
            read_snapshot(str(tmp_path / "absent.json"))

    def test_garbage_bytes_rejected(self, tmp_path):
        path = str(tmp_path / "garbage.json")
        open(path, "w").write("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            read_snapshot(path)

    def test_wrong_circuit_rejected(self, tmp_path):
        _, _, path = self._dd_snapshot(tmp_path)
        loaded = read_snapshot(path)
        other = get_circuit("qft", 5)
        with pytest.raises(CheckpointError, match="fingerprint"):
            validate_snapshot(
                loaded, other, config_digest(FlatDDConfig()), path
            )

    def test_wrong_width_rejected(self, tmp_path):
        _, _, path = self._dd_snapshot(tmp_path)
        loaded = read_snapshot(path)
        with pytest.raises(CheckpointError, match="qubits"):
            validate_snapshot(
                loaded, get_circuit("ghz", 7),
                config_digest(FlatDDConfig()), path,
            )

    def test_wrong_config_rejected(self, tmp_path):
        circuit, _, path = self._dd_snapshot(tmp_path)
        loaded = read_snapshot(path)
        other = config_digest(FlatDDConfig(fusion="cost"))
        with pytest.raises(CheckpointError, match="config digest"):
            validate_snapshot(loaded, circuit, other, path)

    def test_execution_only_config_knobs_accepted(self, tmp_path):
        # Thread-pool choice cannot change results, so it must not
        # invalidate a snapshot.
        circuit, _, path = self._dd_snapshot(tmp_path)
        loaded = read_snapshot(path)
        validate_snapshot(
            loaded, circuit,
            config_digest(FlatDDConfig(use_thread_pool=False)), path,
        )

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        self._dd_snapshot(tmp_path)
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []


class TestRestoreVnode:
    def test_restore_preserves_idx_and_counter(self):
        pkg, e = simulate_dd(get_circuit("random", 5))
        doc = serialize_vector_dd(pkg, e)
        fresh = DDPackage(5)
        restored = deserialize_vector_dd(fresh, doc)
        serial = serialize_vector_dd(fresh, restored)
        restored_idxs = [row[7] for row in serial["nodes"]]
        assert restored_idxs == [row[7] for row in doc["nodes"]]
        # New nodes must be created *after* every restored one, or the
        # operand ordering in DD addition would differ across the cut.
        assert fresh._next_idx > max(restored_idxs)

    def test_restore_is_idempotent(self):
        pkg, e = simulate_dd(get_circuit("ghz", 6))
        doc = serialize_vector_dd(pkg, e)
        fresh = DDPackage(6)
        first = deserialize_vector_dd(fresh, doc)
        before = fresh.unique_node_count
        second = deserialize_vector_dd(fresh, doc)
        # Hash-consing: the second pass resolves every row to the node the
        # first pass installed.
        assert second.n is first.n
        assert fresh.unique_node_count == before


class TestPlanCacheInvalidation:
    """checkpoint_barrier / GC must invalidate DMAV plans, and resume
    must stay bit-identical with the plan compiler enabled."""

    def test_gc_bumps_epoch(self):
        pkg = DDPackage(4)
        assert pkg.gc_epoch == 0
        pkg.collect_garbage([])
        assert pkg.gc_epoch == 1

    def test_checkpoint_barrier_bumps_epoch(self):
        pkg, e = simulate_dd(get_circuit("ghz", 4))
        before = pkg.gc_epoch
        pkg.checkpoint_barrier([e])
        assert pkg.gc_epoch == before + 1

    def test_barrier_invalidates_compiled_plans(self):
        from repro.backends.gatecache import build_gate_dd
        from repro.circuits import Gate
        from repro.common.config import DENSE_BLOCK_LEVEL
        from repro.core.cost_model import CostModel
        from repro.core.dmav import assign_tasks
        from repro.core.plan import PlanCache

        pkg = DDPackage(5)
        plans = PlanCache(pkg, 2, CostModel(2), DENSE_BLOCK_LEVEL)
        m = build_gate_dd(pkg, Gate("h", (0,)))
        plans.get(m)
        pkg.checkpoint_barrier([m])
        plan = plans.get(m)
        assert plans.invalidations == 1
        assert plans.compiles == 2
        # The recompiled plan must still mirror the live package exactly.
        legacy = assign_tasks(pkg, m, 2)
        assert [
            [(id(node), off, c) for node, off, c in row]
            for row in plan.row_tasks
        ] == [
            [(id(node), off, c) for node, off, c in row] for row in legacy
        ]

    @pytest.mark.parametrize("plan_cache", [True, False])
    def test_array_phase_resume_bit_identical(self, tmp_path, plan_cache):
        from repro.core import FlatDDSimulator
        from repro.resilience import read_snapshot as _read

        circuit = get_circuit("qft", 7)
        path = tmp_path / "plan.ckpt"
        cfg = FlatDDConfig(
            threads=2, force_convert_at=1, plan_cache=plan_cache
        )
        full = FlatDDSimulator(cfg).run(
            circuit, checkpoint_every=3, checkpoint_path=str(path)
        )
        assert _read(str(path)).phase == "array"
        resumed = FlatDDSimulator(cfg).run(circuit, resume_from=str(path))
        assert np.array_equal(full.state, resumed.state)

    def test_plan_on_off_resume_all_bit_identical(self, tmp_path):
        # The four-way grid: {plans on, off} x {uninterrupted, resumed}
        # must land on the same bits, so the execution-only claim of
        # FlatDDConfig.plan_cache survives the resilience path too.
        from repro.core import FlatDDSimulator

        circuit = get_circuit("supremacy", 8)
        states = []
        for plan_cache in (True, False):
            path = tmp_path / f"grid-{plan_cache}.ckpt"
            cfg = FlatDDConfig(threads=2, plan_cache=plan_cache)
            full = FlatDDSimulator(cfg).run(
                circuit, checkpoint_every=5, checkpoint_path=str(path)
            )
            resumed = FlatDDSimulator(cfg).run(
                circuit, resume_from=str(path)
            )
            states.extend([full.state, resumed.state])
        for other in states[1:]:
            assert np.array_equal(states[0], other)
