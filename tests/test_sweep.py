"""Batched parameter-sweep execution (``simulate_sweep``).

The sweep contract is *bit-identity*: every row of the batch must equal
(``np.array_equal``) the state of a single-shot ``run()`` on the
equivalently bound circuit under the same config.  These tests pin that
contract across batch shapes, thread counts, cache policies, and the
degenerate inputs the API must reject, plus the memory-guard behaviour
mid-sweep.
"""

import base64
import os

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.generators.regular import qft
from repro.common.errors import (
    CheckpointError,
    CircuitError,
    ReproError,
    ResourceExhaustedError,
    SimulationError,
)
from repro.core.simulator import FlatDDSimulator
from repro.resilience.snapshot import read_snapshot
from repro.verify.fuzz.oracles import phase_aligned_error


def _template(n=4, layers=2):
    """Hardware-efficient template with a leading H column.

    The H column gives every bound row an identical gate prefix, so a
    sweep with ``force_convert_at=0`` shares one DD phase per group.
    """
    c = Circuit(n, name="sweep-template")
    for q in range(n):
        c.h(q)
    for _ in range(layers):
        for q in range(n):
            c.ry(0.0, q)
        for q in range(n):
            c.rz(0.0, q)
        for q in range(n - 1):
            c.cx(q, q + 1)
    return c


def _rows(circuit, count, seed=0):
    rng = np.random.default_rng(seed)
    return [
        tuple(rng.uniform(-np.pi, np.pi, circuit.num_param_slots))
        for _ in range(count)
    ]


def _assert_rows_identical(sim, circuit, rows, result):
    for i, row in enumerate(rows):
        ref = sim.run(circuit.bind(row)).state
        assert np.array_equal(result.states[i], ref), (
            f"row {i} diverged: max|diff|="
            f"{np.max(np.abs(result.states[i] - ref))}"
        )


# ---------------------------------------------------------------------------
# Shape and degenerate-input behaviour
# ---------------------------------------------------------------------------


def test_batch_of_one_matches_single_shot():
    c = _template()
    sim = FlatDDSimulator(threads=2, force_convert_at=0)
    rows = _rows(c, 1)
    result = sim.simulate_sweep(c, rows)
    assert result.states.shape == (1, 1 << c.num_qubits)
    assert result.num_rows == 1
    _assert_rows_identical(sim, c, rows, result)


def test_empty_param_sets_rejected_with_structured_error():
    sim = FlatDDSimulator(threads=1)
    with pytest.raises(SimulationError) as exc:
        sim.simulate_sweep(_template(), [])
    assert isinstance(exc.value, ReproError)
    assert "at least one parameter set" in str(exc.value)


def test_wrong_row_width_rejected():
    c = _template()
    sim = FlatDDSimulator(threads=1)
    with pytest.raises(CircuitError):
        sim.simulate_sweep(c, [(0.1, 0.2)])


def test_non_parameterized_circuit_sweeps():
    ghz = Circuit(4, name="ghz").h(0)
    for q in range(3):
        ghz.cx(q, q + 1)
    assert ghz.num_param_slots == 0
    sim = FlatDDSimulator(threads=2)
    result = sim.simulate_sweep(ghz, [(), (), ()])
    ref = sim.run(ghz).state
    for i in range(3):
        assert np.array_equal(result.states[i], ref)
    # all three rows are the same circuit: one simulation, fanned out
    assert result.metadata["unique_rows"] == 1


def test_duplicate_rows_deduplicated_and_fanned_out():
    c = _template()
    sim = FlatDDSimulator(threads=2, force_convert_at=0)
    rows = _rows(c, 3)
    rows = [rows[0], rows[1], rows[0], rows[2], rows[1]]
    result = sim.simulate_sweep(c, rows)
    assert result.metadata["rows"] == 5
    assert result.metadata["unique_rows"] == 3
    assert np.array_equal(result.states[0], result.states[2])
    assert np.array_equal(result.states[1], result.states[4])
    _assert_rows_identical(sim, c, rows, result)


def test_qft_identical_rows_collapse_to_one_group():
    c = qft(5)
    sim = FlatDDSimulator(threads=2)
    row = c.extract_params()
    result = sim.simulate_sweep(c, [row] * 4)
    ref = sim.run(c).state
    for i in range(4):
        assert np.array_equal(result.states[i], ref)
    assert result.metadata["unique_rows"] == 1
    assert result.metadata["groups"] == 1


# ---------------------------------------------------------------------------
# Batch sizes vs thread counts
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batch", [1, 3, 4, 9])
def test_batch_sizes_straddling_thread_count(batch):
    """Batches below, at, and above the thread count all stay exact."""
    c = _template(n=4, layers=1)
    sim = FlatDDSimulator(threads=4, force_convert_at=0)
    rows = _rows(c, batch, seed=batch)
    result = sim.simulate_sweep(c, rows)
    assert result.states.shape == (batch, 16)
    _assert_rows_identical(sim, c, rows, result)


def test_thread_count_invariance():
    """Sweep(t) is bit-equal to run(t); states agree across thread counts.

    Bit-identity is only promised *at the same thread count* (DMAV task
    splits differ across counts, like the existing thread-invariance
    oracle); across counts the states must still agree to 1e-9 up to
    global phase.
    """
    c = _template(n=4, layers=2)
    rows = _rows(c, 5, seed=7)
    per_thread = {}
    for t in (1, 2, 4):
        sim = FlatDDSimulator(threads=t, force_convert_at=0)
        result = sim.simulate_sweep(c, rows)
        _assert_rows_identical(sim, c, rows, result)
        per_thread[t] = result.states
    for t in (2, 4):
        for i in range(len(rows)):
            err = phase_aligned_error(per_thread[1][i], per_thread[t][i])
            assert err <= 1e-9


@pytest.mark.parametrize("policy", ["auto", "always", "never"])
def test_cache_policies_bit_identical(policy):
    c = _template(n=4, layers=2)
    sim = FlatDDSimulator(threads=2, cache_policy=policy, force_convert_at=0)
    rows = _rows(c, 4, seed=3)
    result = sim.simulate_sweep(c, rows)
    _assert_rows_identical(sim, c, rows, result)


def test_ewma_timed_sweep_matches_runs():
    """No forced conversion: grouping follows each row's own trigger."""
    c = _template(n=4, layers=2)
    sim = FlatDDSimulator(threads=2)
    rows = _rows(c, 3, seed=11)
    result = sim.simulate_sweep(c, rows)
    _assert_rows_identical(sim, c, rows, result)


def test_fusion_falls_back_to_per_row_runs():
    c = _template(n=3, layers=1)
    sim = FlatDDSimulator(threads=2, fusion="koperations")
    rows = _rows(c, 3, seed=5)
    rows.append(rows[0])
    result = sim.simulate_sweep(c, rows)
    assert result.metadata["mode"] == "fallback-fusion"
    _assert_rows_identical(sim, c, rows, result)


# ---------------------------------------------------------------------------
# DD-phase shrinking (identity skip + qubit reorder)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "identity_skip,qubit_order",
    [
        (True, "natural"),
        (False, "natural"),
        (True, "interaction"),
        (False, "sift"),
        (True, "sift"),
    ],
)
def test_dd_shrink_rows_bit_identical(identity_skip, qubit_order):
    """Identity-skipped, reordered sweeps keep the bit-identity contract."""
    c = _template(n=4, layers=2)
    sim = FlatDDSimulator(
        threads=2, identity_skip=identity_skip, qubit_order=qubit_order
    )
    rows = _rows(c, 4, seed=13)
    result = sim.simulate_sweep(c, rows)
    _assert_rows_identical(sim, c, rows, result)
    assert result.metadata["identity_skip"] is identity_skip
    assert result.metadata["qubit_order"] == qubit_order


def test_dd_shrink_rewind_rolls_back_windowed_prefix():
    """Forced mid-prefix conversion replays the permuted, identity-skipped
    DD prefix per group through build_mark()/rewind_to_mark(); bit-identity
    against single-shot runs proves the rewind rolls windowed builds and
    permuted gate DDs back exactly."""
    c = _template(n=4, layers=2)
    sim = FlatDDSimulator(
        threads=2, force_convert_at=2, identity_skip=True, qubit_order="sift"
    )
    rows = _rows(c, 4, seed=17)
    rows.append(rows[1])  # duplicate exercises the dedup fan-out too
    result = sim.simulate_sweep(c, rows)
    assert result.metadata["groups"] >= 1
    _assert_rows_identical(sim, c, rows, result)


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def test_sweep_metadata_counters():
    c = _template(n=4, layers=1)
    sim = FlatDDSimulator(threads=2, force_convert_at=0)
    rows = _rows(c, 4, seed=1)
    result = sim.simulate_sweep(c, rows)
    counters = result.metadata["obs"]["counters"]
    assert counters["dmav.sweep.rows"] == 4
    assert counters["dmav.sweep.unique_rows"] == 4
    assert counters["dmav.sweep.groups"] == result.metadata["groups"]
    assert (
        counters["dmav.sweep.gates_batched"]
        + counters["dmav.sweep.gates_rowloop"]
    ) > 0
    assert result.runtime_seconds > 0
    assert result.peak_memory_bytes > 0
    assert result.backend == sim.name


# ---------------------------------------------------------------------------
# Memory guard mid-sweep
# ---------------------------------------------------------------------------


def test_guard_breach_mid_sweep_checkpoints_cleanly(tmp_path):
    """A budget breach in the batched replay writes a sweep snapshot and
    raises the structured error; the snapshot is diagnostic only."""
    c = _template(n=4, layers=1)
    path = os.fspath(tmp_path / "sweep.ckpt")
    sim = FlatDDSimulator(
        threads=2, force_convert_at=0, memory_budget_bytes=1
    )
    rows = _rows(c, 3, seed=2)
    with pytest.raises(ResourceExhaustedError) as exc:
        sim.simulate_sweep(c, rows, checkpoint_path=path)
    err = exc.value
    assert err.phase == "sweep"
    assert err.budget_bytes == 1
    assert err.checkpoint_path == path
    snap = read_snapshot(path)
    assert snap.phase == "sweep"
    assert snap.num_qubits == 4
    assert snap.circuit_fingerprint == c.fingerprint()
    assert snap.data["rows"] == 3
    raw = base64.b64decode(snap.data["states_b64"])
    states = np.frombuffer(raw, dtype=np.complex128).reshape(3, 16)
    assert states.shape == (3, 16)
    # sweep snapshots cannot seed a single-shot resume (same config, so
    # the digest pin passes and the phase rejection is what fires)
    with pytest.raises(CheckpointError, match="sweep-phase"):
        sim.run(c, resume_from=path)


def test_guard_breach_without_checkpoint_path(tmp_path):
    c = _template(n=4, layers=1)
    sim = FlatDDSimulator(
        threads=2, force_convert_at=0, memory_budget_bytes=1
    )
    with pytest.raises(ResourceExhaustedError) as exc:
        sim.simulate_sweep(c, _rows(c, 2))
    assert exc.value.phase == "sweep"
    assert exc.value.checkpoint_path is None
