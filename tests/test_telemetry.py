"""Histogram math, the telemetry sampler, and Prometheus/terminal exports."""

import json
import math
import threading

import numpy as np
import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    TelemetrySampler,
    format_metrics_table,
    format_telemetry_report,
    load_telemetry,
    prometheus_text,
)


def _observe_all(hist, values):
    for v in values:
        hist.observe(v)


class TestHistogramMath:
    """Percentile accuracy against numpy on known distributions."""

    @pytest.mark.parametrize(
        "dist",
        [
            lambda rng: rng.uniform(1e-4, 1e-1, size=5000),
            lambda rng: rng.lognormal(mean=-6.0, sigma=1.5, size=5000),
            lambda rng: np.abs(rng.normal(1e-3, 5e-4, size=5000)),
        ],
        ids=["uniform", "lognormal", "halfnormal"],
    )
    def test_percentiles_track_numpy_quantiles(self, dist):
        rng = np.random.default_rng(7)
        values = dist(rng)
        hist = MetricsRegistry().histogram("h")
        _observe_all(hist, values)
        for q in (50.0, 90.0, 99.0):
            exact = float(np.quantile(values, q / 100.0))
            approx = hist.percentile(q)
            # 8 buckets/decade gives ~33% worst-case relative bucket
            # width; interpolation lands far closer in practice.
            assert approx == pytest.approx(exact, rel=0.35), q

    def test_mean_and_sum_are_exact(self):
        values = [0.001, 0.002, 0.004, 0.008]
        hist = MetricsRegistry().histogram("h")
        _observe_all(hist, values)
        assert hist.sum == pytest.approx(sum(values))
        assert hist.mean == pytest.approx(sum(values) / len(values))

    def test_single_value_reports_it_everywhere(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(0.0042)
        snap = hist.snapshot()
        for key in ("min", "max", "mean", "p50", "p90", "p99"):
            assert snap[key] == pytest.approx(0.0042), key

    def test_percentiles_clamped_to_observed_extremes(self):
        hist = MetricsRegistry().histogram("h")
        _observe_all(hist, [0.010, 0.011, 0.012])
        assert hist.percentile(0.0) >= 0.010
        assert hist.percentile(100.0) <= 0.012

    def test_empty_histogram_snapshots_to_none(self):
        snap = MetricsRegistry().histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["p50"] is None and snap["mean"] is None

    def test_out_of_range_observations_kept(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1e-9)   # below first bound
        hist.observe(1e6)    # beyond last bound -> overflow bucket
        hist.observe(-1.0)   # clamped to 0
        assert hist.count == 3
        assert hist.min == 0.0
        assert hist.max == 1e6
        bounds, cumulative = zip(*hist.bucket_counts())
        assert bounds[-1] == math.inf
        assert cumulative[-1] == 3

    def test_custom_bounds_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", bounds=[2.0, 1.0])
        hist = reg.histogram("ok", bounds=[1.0, 10.0])
        hist.observe(5.0)
        assert hist.bucket_counts()[1] == (10.0, 1)

    def test_percentile_rejects_out_of_range_q(self):
        hist = MetricsRegistry().histogram("h")
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_concurrent_observations_lose_nothing(self):
        hist = MetricsRegistry().histogram("h")
        per_thread, threads = 2000, 8

        def worker(seed):
            rng = np.random.default_rng(seed)
            for v in rng.uniform(1e-5, 1e-2, size=per_thread):
                hist.observe(float(v))

        pool = [
            threading.Thread(target=worker, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert hist.count == per_thread * threads
        assert sum(n for _, n in zip(hist.bounds, hist.buckets)) <= hist.count
        assert hist.bucket_counts()[-1][1] == hist.count


class TestRegistry:
    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.counter(name).inc()
            reg.gauge(name).set(1.0)
            reg.histogram(name).observe(0.001)
        snap = reg.snapshot()
        for table in ("counters", "gauges", "histograms"):
            assert list(snap[table]) == ["alpha", "mid", "zeta"], table

    def test_concurrent_instrument_creation_yields_one_instance(self):
        reg = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for i in range(50):
                c = reg.counter(f"c{i}")
                c.inc()
                seen.append((i, id(c)))

        pool = [threading.Thread(target=worker) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        ids = {}
        for i, ident in seen:
            ids.setdefault(i, set()).add(ident)
        assert all(len(s) == 1 for s in ids.values())
        assert all(reg.counter(f"c{i}").value == 8 * 1 for i in range(50))


class TestTelemetrySampler:
    def test_jsonl_series_carries_both_clocks(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(3)
        path = str(tmp_path / "tele.jsonl")
        sampler = TelemetrySampler(reg, jsonl_path=path, interval_seconds=0.01)
        sampler.sample_now()
        reg.counter("jobs").inc(2)
        sampler.stop()
        records = load_telemetry(path)
        assert len(records) == 2
        assert [r["seq"] for r in records] == [0, 1]
        for r in records:
            assert r["ts"] > 1e9          # wall clock epoch seconds
            assert 0 < r["ts_mono"] < 1e9  # monotonic, process-relative
        assert records[0]["counters"]["jobs"] == 3
        assert records[1]["counters"]["jobs"] == 5

    def test_background_thread_samples_on_interval(self, tmp_path):
        reg = MetricsRegistry()
        path = str(tmp_path / "tele.jsonl")
        with TelemetrySampler(reg, jsonl_path=path, interval_seconds=0.01):
            done = threading.Event()
            done.wait(0.08)
        records = load_telemetry(path)
        # At least a couple of interval ticks plus the final stop() sample.
        assert len(records) >= 3
        assert [r["seq"] for r in records] == list(range(len(records)))

    def test_prometheus_dump_written_on_stop(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("serve.jobs.done").inc(4)
        reg.histogram("serve.latency.e2e").observe(0.01)
        prom = str(tmp_path / "metrics.prom")
        sampler = TelemetrySampler(reg, prometheus_path=prom)
        sampler.stop()
        text = open(prom).read()
        assert "# TYPE repro_serve_jobs_done counter" in text
        assert "repro_serve_jobs_done 4" in text
        assert 'repro_serve_latency_e2e_bucket{le="+Inf"} 1' in text
        assert "repro_serve_latency_e2e_count 1" in text

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TelemetrySampler(MetricsRegistry(), interval_seconds=0.0)


class TestExports:
    def test_prometheus_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=[0.001, 0.01, 0.1])
        _observe_all(h, [0.0005, 0.005, 0.05, 5.0])
        text = prometheus_text(reg)
        assert 'repro_lat_bucket{le="0.001"} 1' in text
        assert 'repro_lat_bucket{le="0.01"} 2' in text
        assert 'repro_lat_bucket{le="0.1"} 3' in text
        assert 'repro_lat_bucket{le="+Inf"} 4' in text
        assert "repro_lat_count 4" in text

    def test_metrics_table_renders_all_sections(self):
        reg = MetricsRegistry()
        reg.counter("serve.jobs.done").inc(7)
        reg.gauge("queue.depth").set(3.0)
        reg.histogram("serve.latency.run").observe(0.002)
        table = format_metrics_table(reg.snapshot(), title="snap")
        assert "snap" in table
        assert "serve.latency.run" in table and "2.000ms" in table
        assert "serve.jobs.done" in table and "7" in table
        assert "queue.depth" in table

    def test_telemetry_report_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        path = str(tmp_path / "t.jsonl")
        sampler = TelemetrySampler(reg, jsonl_path=path)
        sampler.sample_now()
        sampler.stop()
        report = format_telemetry_report(load_telemetry(path), path)
        assert "2 sample(s)" in report
        assert "final snapshot" in report

    def test_load_telemetry_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_telemetry(str(path))

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap
