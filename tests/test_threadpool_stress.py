"""Thread-pool execution stress: real threads over every parallel path.

Single-core hardware cannot show speedups, but it absolutely can expose
races, missing synchronization, or task-partition bugs.  These tests push
the pooled execution mode across backends, thread counts, and repeated
runs on one shared simulator instance.
"""

import numpy as np
import pytest

from repro import FlatDDSimulator, StatevectorSimulator, get_circuit
from repro.common.config import FlatDDConfig
from repro.core.conversion import convert_parallel
from repro.core.dmav import dmav_cached, dmav_nocache
from repro.dd import DDPackage, matrix_to_dense, vector_from_array
from repro.backends.gatecache import build_gate_dd
from repro.circuits import Gate
from repro.parallel.pool import TaskRunner

from tests.conftest import random_state

# Spawns real thread pools across many configurations; excluded from the
# fast tier-1 default, run with `pytest -m slow`.
pytestmark = pytest.mark.slow


class TestPooledFlatDD:
    @pytest.mark.parametrize("threads", [2, 4, 8])
    def test_pooled_runs_match_inline(self, threads):
        c = get_circuit("supremacy", 8, cycles=8)
        inline = FlatDDSimulator(threads=threads).run(c)
        pooled = FlatDDSimulator(
            threads=threads, use_thread_pool=True
        ).run(c)
        np.testing.assert_allclose(pooled.state, inline.state, atol=1e-12)

    def test_pooled_with_fusion_and_caching(self):
        c = get_circuit("dnn", 8, layers=5)
        ref = StatevectorSimulator().run(c).state
        r = FlatDDSimulator(
            threads=4, use_thread_pool=True, fusion="cost",
            cache_policy="always",
        ).run(c)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(
            1.0, abs=1e-8
        )

    def test_repeated_pooled_runs_on_one_instance(self):
        sim = FlatDDSimulator(threads=4, use_thread_pool=True)
        c = get_circuit("supremacy", 7, cycles=6)
        states = [sim.run(c).state for _ in range(5)]
        for s in states[1:]:
            np.testing.assert_allclose(s, states[0], atol=0)


class TestPooledKernels:
    def test_many_gates_through_one_pool(self):
        n = 8
        pkg = DDPackage(n)
        v = random_state(n, seed=1)
        gates = [
            Gate("h", (q,)) for q in range(n)
        ] + [Gate("cx", ((q + 1) % n,), (q,)) for q in range(n)]
        with TaskRunner(4, use_pool=True) as runner:
            state = v
            ref = v
            out = np.zeros_like(v)
            for g in gates:
                m = build_gate_dd(pkg, g)
                state, _ = dmav_cached(pkg, m, state, 4, runner=runner)
                ref = matrix_to_dense(pkg, m) @ ref
        np.testing.assert_allclose(state, ref, atol=1e-8)

    def test_interleaved_conversion_and_dmav(self):
        n = 8
        pkg = DDPackage(n)
        arr = random_state(n, seed=2)
        with TaskRunner(4, use_pool=True) as runner:
            for _ in range(5):
                state_dd = vector_from_array(pkg, arr)
                out, _ = convert_parallel(pkg, state_dd, 4, runner=runner)
                np.testing.assert_allclose(out, arr, atol=1e-9)
                m = build_gate_dd(pkg, Gate("h", (n - 1,)))
                arr, _ = dmav_nocache(pkg, m, out, 4, runner=runner)
                arr = arr / np.linalg.norm(arr)

    def test_pool_survives_task_exceptions(self):
        runner = TaskRunner(4, use_pool=True)
        with runner:
            with pytest.raises(ZeroDivisionError):
                runner.run([lambda: 1 / 0])
            # The pool is still usable afterwards.
            assert runner.run([lambda: 7]) == [7]


class TestRunnerLifecycle:
    """Regression tests for the shutdown paths the serving layer leans on.

    Historically ``close()`` kept a dangling executor reference (a second
    call raised) and an exception inside the ``with`` block leaked the
    pool.  The service's WorkerPool closes its runner from ``close()``
    *and* ``__exit__`` and must survive both orders.
    """

    def test_close_is_idempotent(self):
        runner = TaskRunner(4, use_pool=True)
        with runner:
            assert runner.run([lambda: 1]) == [1]
        runner.close()
        runner.close()  # second (and third) close must be a no-op
        runner.close(cancel_pending=True)

    def test_exit_shuts_down_after_thunk_raised(self):
        runner = TaskRunner(4, use_pool=True)
        with pytest.raises(ZeroDivisionError):
            with runner:
                runner.run([lambda: 1 / 0])
        assert runner._pool is None  # executor released despite the raise
        # The runner is re-enterable with a fresh pool.
        with runner:
            assert runner._pool is not None
            assert runner.run([lambda: 2]) == [2]
        assert runner._pool is None

    def test_reentry_does_not_leak_pools(self):
        runner = TaskRunner(2, use_pool=True)
        with runner:
            first = runner._pool
            with runner:  # nested entry reuses the live executor
                assert runner._pool is first
        assert runner._pool is None

    def test_cancel_pending_drops_queued_tasks(self):
        import threading
        import time

        gate = threading.Event()
        ran = []

        def blocker():
            gate.wait(5.0)
            ran.append("blocker")

        def queued():
            ran.append("queued")

        # threads=1 runs inline, so saturate a 2-worker pool instead.
        runner = TaskRunner(2, use_pool=True, cancel_pending=True)
        runner.__enter__()
        # Submit directly so run()'s result iteration does not block.
        runner._pool.submit(blocker)
        runner._pool.submit(blocker)
        runner._pool.submit(queued)
        time.sleep(0.05)  # let the blockers occupy both workers
        gate.set()
        runner.close()  # cancel_pending default drops `queued`
        assert ran == ["blocker", "blocker"]

    def test_close_without_cancel_drains_queue(self):
        import threading
        import time

        gate = threading.Event()
        ran = []

        runner = TaskRunner(2, use_pool=True, cancel_pending=False)
        runner.__enter__()
        runner._pool.submit(lambda: (gate.wait(5.0), ran.append("a")))
        runner._pool.submit(lambda: (gate.wait(5.0), ran.append("a")))
        runner._pool.submit(lambda: ran.append("b"))
        time.sleep(0.05)
        gate.set()
        runner.close()
        assert sorted(ran) == ["a", "a", "b"]  # queued task still drained
