"""Thread-pool execution stress: real threads over every parallel path.

Single-core hardware cannot show speedups, but it absolutely can expose
races, missing synchronization, or task-partition bugs.  These tests push
the pooled execution mode across backends, thread counts, and repeated
runs on one shared simulator instance.
"""

import numpy as np
import pytest

from repro import FlatDDSimulator, StatevectorSimulator, get_circuit
from repro.common.config import FlatDDConfig
from repro.core.conversion import convert_parallel
from repro.core.dmav import dmav_cached, dmav_nocache
from repro.dd import DDPackage, matrix_to_dense, vector_from_array
from repro.backends.gatecache import build_gate_dd
from repro.circuits import Gate
from repro.parallel.pool import TaskRunner

from tests.conftest import random_state

# Spawns real thread pools across many configurations; excluded from the
# fast tier-1 default, run with `pytest -m slow`.
pytestmark = pytest.mark.slow


class TestPooledFlatDD:
    @pytest.mark.parametrize("threads", [2, 4, 8])
    def test_pooled_runs_match_inline(self, threads):
        c = get_circuit("supremacy", 8, cycles=8)
        inline = FlatDDSimulator(threads=threads).run(c)
        pooled = FlatDDSimulator(
            threads=threads, use_thread_pool=True
        ).run(c)
        np.testing.assert_allclose(pooled.state, inline.state, atol=1e-12)

    def test_pooled_with_fusion_and_caching(self):
        c = get_circuit("dnn", 8, layers=5)
        ref = StatevectorSimulator().run(c).state
        r = FlatDDSimulator(
            threads=4, use_thread_pool=True, fusion="cost",
            cache_policy="always",
        ).run(c)
        assert abs(np.vdot(r.state, ref)) ** 2 == pytest.approx(
            1.0, abs=1e-8
        )

    def test_repeated_pooled_runs_on_one_instance(self):
        sim = FlatDDSimulator(threads=4, use_thread_pool=True)
        c = get_circuit("supremacy", 7, cycles=6)
        states = [sim.run(c).state for _ in range(5)]
        for s in states[1:]:
            np.testing.assert_allclose(s, states[0], atol=0)


class TestPooledKernels:
    def test_many_gates_through_one_pool(self):
        n = 8
        pkg = DDPackage(n)
        v = random_state(n, seed=1)
        gates = [
            Gate("h", (q,)) for q in range(n)
        ] + [Gate("cx", ((q + 1) % n,), (q,)) for q in range(n)]
        with TaskRunner(4, use_pool=True) as runner:
            state = v
            ref = v
            out = np.zeros_like(v)
            for g in gates:
                m = build_gate_dd(pkg, g)
                state, _ = dmav_cached(pkg, m, state, 4, runner=runner)
                ref = matrix_to_dense(pkg, m) @ ref
        np.testing.assert_allclose(state, ref, atol=1e-8)

    def test_interleaved_conversion_and_dmav(self):
        n = 8
        pkg = DDPackage(n)
        arr = random_state(n, seed=2)
        with TaskRunner(4, use_pool=True) as runner:
            for _ in range(5):
                state_dd = vector_from_array(pkg, arr)
                out, _ = convert_parallel(pkg, state_dd, 4, runner=runner)
                np.testing.assert_allclose(out, arr, atol=1e-9)
                m = build_gate_dd(pkg, Gate("h", (n - 1,)))
                arr, _ = dmav_nocache(pkg, m, out, 4, runner=runner)
                arr = arr / np.linalg.norm(arr)

    def test_pool_survives_task_exceptions(self):
        runner = TaskRunner(4, use_pool=True)
        with runner:
            with pytest.raises(ZeroDivisionError):
                runner.run([lambda: 1 / 0])
            # The pool is still usable afterwards.
            assert runner.run([lambda: 7]) == [7]
