"""Unit tests for the basis-gate transpiler."""

import cmath
import math

import numpy as np
import pytest

from repro.backends import StatevectorSimulator
from repro.circuits import Circuit, Gate, get_circuit
from repro.circuits.transpile import BASIS_GATES, decompose, zyz_angles
from repro.common.errors import CircuitError

from tests.conftest import reference_state


def random_unitary_2x2(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
    q, r = np.linalg.qr(m)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Dense unitary of a small circuit via the DD substrate."""
    from repro.backends.gatecache import build_gate_dd
    from repro.dd import DDPackage, matrix_to_dense, mm_multiply

    pkg = DDPackage(circuit.num_qubits)
    acc = pkg.identity_edge(circuit.num_qubits - 1)
    for g in circuit.gates:
        acc = mm_multiply(pkg, build_gate_dd(pkg, g), acc)
    return matrix_to_dense(pkg, acc)


def assert_decomposition_exact(circuit: Circuit) -> None:
    """Decomposed circuit's unitary must equal phase * original, exactly."""
    out, phase = decompose(circuit)
    for g in out.gates:
        assert g.name in BASIS_GATES, g
    u_orig = circuit_unitary(circuit)
    u_new = circuit_unitary(out)
    np.testing.assert_allclose(u_new, phase * u_orig, atol=1e-9)


class TestZYZ:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_unitary_roundtrip(self, seed):
        u = random_unitary_2x2(seed)
        alpha, beta, gamma, delta = zyz_angles(u)

        def rz(t):
            return np.diag([cmath.exp(-0.5j * t), cmath.exp(0.5j * t)])

        def ry(t):
            c, s = math.cos(t / 2), math.sin(t / 2)
            return np.array([[c, -s], [s, c]])

        rebuilt = cmath.exp(1j * alpha) * rz(beta) @ ry(gamma) @ rz(delta)
        np.testing.assert_allclose(rebuilt, u, atol=1e-10)

    @pytest.mark.parametrize(
        "name", ["x", "y", "z", "h", "s", "t", "sx", "sw", "id"]
    )
    def test_library_gates(self, name):
        u = Gate(name, (0,)).matrix()
        alpha, beta, gamma, delta = zyz_angles(u)
        assert all(math.isfinite(v) for v in (alpha, beta, gamma, delta))

    def test_bad_shape_rejected(self):
        with pytest.raises(CircuitError):
            zyz_angles(np.eye(4))


class TestSingleQubitDecomposition:
    @pytest.mark.parametrize(
        "name,params",
        [("h", ()), ("x", ()), ("t", ()), ("sx", ()), ("sw", ()),
         ("rx", (0.7,)), ("u3", (0.5, 1.1, -0.3)), ("u2", (0.2, 0.9))],
    )
    def test_each_gate(self, name, params):
        c = Circuit(2)
        c.add(name, 1, params=params)
        assert_decomposition_exact(c)

    def test_basis_gates_pass_through(self):
        c = Circuit(1).rz(0.3, 0).ry(0.4, 0).p(0.5, 0)
        out, phase = decompose(c)
        assert [g.name for g in out] == ["rz", "ry", "p"]
        assert phase == 1.0


class TestControlledDecomposition:
    @pytest.mark.parametrize(
        "name,params",
        [("cz", ()), ("cy", ()), ("ch", ()), ("cp", (0.8,)),
         ("crx", (1.1,)), ("cry", (0.4,)), ("crz", (2.0,)), ("cu1", (0.6,))],
    )
    def test_each_controlled_gate(self, name, params):
        c = Circuit(3)
        c.add(name, 2, 0, params=params)
        assert_decomposition_exact(c)

    def test_cx_passes_through(self):
        c = Circuit(2).cx(0, 1)
        out, phase = decompose(c)
        assert [g.name for g in out] == ["cx"]
        assert phase == 1.0


class TestTwoQubitDecomposition:
    def test_swap(self):
        c = Circuit(3).swap(0, 2)
        out, _ = decompose(c)
        assert out.gate_counts["cx"] == 3
        assert_decomposition_exact(c)

    @pytest.mark.parametrize("theta", [0.3, math.pi / 2, 2.2])
    def test_rzz_rxx(self, theta):
        for name in ("rzz", "rxx"):
            c = Circuit(2)
            c.add(name, 0, 1, params=(theta,))
            assert_decomposition_exact(c)

    def test_iswap(self):
        c = Circuit(2).add("iswap", 0, 1)
        assert_decomposition_exact(c)

    @pytest.mark.parametrize(
        "theta,phi", [(0.0, 0.0), (math.pi / 2, 0.0), (0.4, 1.3)]
    )
    def test_fsim(self, theta, phi):
        c = Circuit(2)
        c.add("fsim", 0, 1, params=(theta, phi))
        assert_decomposition_exact(c)


class TestThreeQubitDecomposition:
    def test_toffoli(self):
        c = Circuit(3).ccx(0, 1, 2)
        out, _ = decompose(c)
        assert out.gate_counts["cx"] == 6
        assert_decomposition_exact(c)

    def test_ccz(self):
        c = Circuit(3).add("ccz", 0, 1, 2)
        assert_decomposition_exact(c)

    def test_fredkin(self):
        c = Circuit(3).cswap(0, 1, 2)
        assert_decomposition_exact(c)


class TestWholeCircuits:
    @pytest.mark.parametrize(
        "family,n,kwargs",
        [("ghz", 5, {}), ("qft", 4, {}), ("adder", 6, {}),
         ("supremacy", 4, {"cycles": 4}), ("knn", 5, {}),
         ("grover", 3, {})],
    )
    def test_state_preserved_up_to_phase(self, family, n, kwargs):
        c = get_circuit(family, n, **kwargs)
        out, phase = decompose(c)
        ref = reference_state(c)
        got = StatevectorSimulator().run(out).state
        np.testing.assert_allclose(got, phase * ref, atol=1e-8)

    def test_gate_counts_grow_reasonably(self):
        c = get_circuit("qft", 5)
        out, _ = decompose(c)
        assert len(out) < 12 * len(c)

    def test_unsupported_gates_rejected(self):
        from repro.circuits.generators.algorithms import UnitaryGate

        c = Circuit(2)
        c.append(UnitaryGate(np.eye(4), (0, 1)))
        with pytest.raises(CircuitError):
            decompose(c)

    def test_many_controls_rejected(self):
        c = Circuit(4)
        c.append(Gate("z", (3,), (0, 1, 2)))
        with pytest.raises(CircuitError):
            decompose(c)
